//! The unified streaming sampling API: [`SamplingScheme`] and [`Sketch`].
//!
//! Production ingestion does not see fully materialized
//! [`Instance`](crate::Instance)s: records `(key, weight)` arrive one at a
//! time, usually spread over many shards.  Every sampling family in this
//! crate therefore summarizes an instance through a *sketch* — a small,
//! mergeable accumulator driven by three operations:
//!
//! 1. [`Sketch::ingest`] — one-pass per-record update, no instance
//!    materialization;
//! 2. [`Sketch::merge`] — combine the sketches of two shards of the same
//!    logical stream;
//! 3. [`Sketch::finalize`] — produce the [`InstanceSample`] the estimators
//!    in `pie-core` consume (rank-conditioned thresholds included).
//!
//! A [`SamplingScheme`] is the scheme configuration (sampling probability,
//! PPS threshold, `k`, …) that knows how to open sketches for a given
//! randomization.  The legacy batch `sample()` methods on the concrete
//! samplers are retained as thin wrappers: they open one sketch, ingest the
//! instance, and finalize — so streaming and batch paths cannot drift apart.
//!
//! # Sharding contract
//!
//! A logical stream is the set of records of **one instance**.  It may be
//! split into any number of shards as long as records of the same key land in
//! the same shard (partition by key, e.g. [`crate::hash::mix64`]`(key) %
//! shards`) and each key appears at most once per logical stream (records are
//! pre-aggregated per key, as in a keyed log).  Under that contract, for the
//! hash-seeded schemes (oblivious Poisson, PPS Poisson, bottom-k) the merged
//! result is **bit-identical** to ingesting the concatenated stream into a
//! single sketch: per-record decisions are pure functions of
//! `(key, weight, seed)`.  VarOpt draws fresh randomness per sketch, so merge
//! equivalence holds in distribution rather than bitwise (see
//! [`crate::varopt`]).
//!
//! # Reuse
//!
//! Sketches are designed to be pooled: [`Sketch::finalize`] drains the
//! accumulated state but keeps the allocation, and [`Sketch::reset`] rebinds
//! the sketch to a new trial's randomization.  A steady-state ingest loop
//! performs no per-record heap allocation.

use crate::instance::Key;
use crate::sample::InstanceSample;
use crate::seed::SeedAssignment;

/// A streaming, mergeable summary of one instance's record stream.
///
/// See the [module docs](self) for the ingest → merge → finalize lifecycle
/// and the sharding contract.
pub trait Sketch: Send {
    /// Offers one `(key, weight)` record.
    ///
    /// Weighted schemes ignore non-positive weights (their rank is infinite);
    /// the weight-oblivious scheme gives zero-weight records the same
    /// Bernoulli trial as any other, because zero-valued universe keys carry
    /// information for multi-instance functions such as OR and max.
    fn ingest(&mut self, key: Key, weight: f64);

    /// Merges `other` — a sketch of the same scheme over a disjoint shard of
    /// the same logical stream — into `self`, draining `other` (it is left
    /// empty and can be reset and reused).
    ///
    /// # Panics
    /// Implementations panic if the two sketches have incompatible
    /// configurations (different `k`, different thresholds, …).
    fn merge(&mut self, other: &mut Self);

    /// Finalizes the accumulated stream into an [`InstanceSample`], draining
    /// the sketch.  The sketch keeps its allocations and can be [`reset`]
    /// (or ingested into again, which restarts an empty stream).
    ///
    /// [`reset`]: Sketch::reset
    fn finalize(&mut self) -> InstanceSample;

    /// Clears accumulated state and rebinds the sketch to a (possibly new)
    /// randomization, retaining allocated capacity — the pool-reuse path.
    fn reset(&mut self, seeds: &SeedAssignment, instance_index: u64);

    /// Number of records counted since the last reset/finalize (weighted
    /// schemes count positive-weight records only).
    fn ingested(&self) -> usize;

    /// Merges a group of sibling sketches — shards of the same logical stream
    /// — leaving the combined result in `group[0]` and draining the rest.
    ///
    /// The default implementation runs the balanced binary merge tree that
    /// [`merge_tree`] always used, so schemes whose merge is order-sensitive
    /// (VarOpt draws fresh randomness per sketch) keep their exact historical
    /// merge order.  Schemes whose retained state is a pure function of the
    /// record *set* (bottom-k) override this with a single k-bounded
    /// selection over all candidates, which costs O(total candidates)
    /// comparisons instead of O(shards · k log k) re-heapification.
    fn merge_many(group: &mut [&mut Self])
    where
        Self: Sized,
    {
        let mut step = 1;
        while step < group.len() {
            let mut i = 0;
            while i + step < group.len() {
                let (left, right) = group.split_at_mut(i + step);
                left[i].merge(&mut *right[0]);
                i += 2 * step;
            }
            step *= 2;
        }
    }

    /// Resets and sequentially ingests the key-partitioned parts of **one**
    /// logical stream into this group of sketches (`group[s]` receives
    /// `parts[s]`), on the calling thread.
    ///
    /// This is the single-worker execution of a sharded ingest pass: the
    /// default implementation ingests each shard independently, producing
    /// exactly the sketch states the one-thread-per-shard path produces.
    /// Schemes whose retained state is a pure function of the record set may
    /// override it to share retention work across the group (bottom-k routes
    /// all parts through one bounded candidate set).  After an overriding
    /// scheme's group ingest, the individual sketches are only meaningful
    /// merged together via [`merge_many`](Sketch::merge_many) over the full
    /// group — which is what the sharded ingest choreography does.
    ///
    /// # Panics
    /// Panics if `group` and `parts` have different lengths.
    fn ingest_group(
        group: &mut [&mut Self],
        parts: &[&[(Key, f64)]],
        seeds: &SeedAssignment,
        instance_index: u64,
    ) where
        Self: Sized,
    {
        assert_eq!(
            group.len(),
            parts.len(),
            "group ingest needs one sketch per stream part"
        );
        for (sketch, part) in group.iter_mut().zip(parts) {
            sketch.reset(seeds, instance_index);
            for &(key, value) in *part {
                sketch.ingest(key, value);
            }
        }
    }
}

/// A sampling scheme whose per-instance summarization runs as a streaming,
/// mergeable [`Sketch`].
///
/// Implemented by all four sampling families:
///
/// | scheme | sketch | retained state |
/// |---|---|---|
/// | [`ObliviousPoissonSampler`](crate::ObliviousPoissonSampler) | [`ObliviousPoissonSketch`](crate::ObliviousPoissonSketch) | selected records |
/// | [`PpsPoissonSampler`](crate::PpsPoissonSampler) | [`PpsPoissonSketch`](crate::PpsPoissonSketch) | selected records |
/// | [`BottomKSampler`](crate::BottomKSampler) | [`BottomKSketch`](crate::BottomKSketch) | bounded `k + 1` heap |
/// | [`VarOptScheme`](crate::VarOptScheme) | [`VarOptSketch`](crate::VarOptSketch) | fixed-size `k` reservoir |
pub trait SamplingScheme {
    /// The streaming summary state this scheme accumulates.
    type Sketch: Sketch;

    /// Human-readable scheme name (used in reports and bench output).
    fn name(&self) -> &'static str;

    /// Opens an empty sketch for `instance_index` under `seeds` (shard 0).
    fn sketch(&self, seeds: &SeedAssignment, instance_index: u64) -> Self::Sketch;

    /// Opens an empty sketch for one shard of `instance_index`'s stream.
    ///
    /// Hash-seeded schemes ignore `shard` — their per-record decisions depend
    /// only on `(key, seed)`, which is what makes shard merges bit-identical
    /// to single-stream ingestion.  Schemes that draw fresh randomness
    /// (VarOpt) use `shard` to decorrelate the per-shard RNG streams.
    fn sketch_for_shard(
        &self,
        seeds: &SeedAssignment,
        instance_index: u64,
        shard: u64,
    ) -> Self::Sketch {
        let _ = shard;
        self.sketch(seeds, instance_index)
    }
}

/// Discriminant tags identifying the sketch family at the head of every
/// sketch snapshot payload.
///
/// Each sketch's [`Encode`](pie_store::Encode) impl writes its family tag
/// first and its [`Decode`](pie_store::Decode) impl validates it, so feeding
/// a snapshot of one family to another family's decoder yields a typed
/// [`InvalidTag`](pie_store::StoreError::InvalidTag) instead of garbage
/// state.
pub mod sketch_tag {
    /// [`ObliviousPoissonSketch`](crate::ObliviousPoissonSketch) snapshots.
    pub const OBLIVIOUS_POISSON: u32 = 1;
    /// [`PpsPoissonSketch`](crate::PpsPoissonSketch) snapshots.
    pub const PPS_POISSON: u32 = 2;
    /// [`BottomKSketch`](crate::BottomKSketch) snapshots (any rank family).
    pub const BOTTOM_K: u32 = 3;
    /// [`VarOptSketch`](crate::VarOptSketch) snapshots.
    pub const VAR_OPT: u32 = 4;
}

/// Merges a slice of sibling sketches, leaving the combined result in
/// `sketches[0]` (all others are drained).
///
/// Delegates to [`Sketch::merge_many`]: the default is a balanced binary
/// merge tree (shard `i` absorbs shard `i + step` per round, as in a
/// distributed reduce), while set-determined schemes such as bottom-k
/// substitute a single k-bounded selection over all candidates.  For
/// deterministic, hash-seeded schemes the finalized result is independent of
/// the merge strategy.
///
/// Does nothing on an empty slice.
pub fn merge_tree<K: Sketch>(sketches: &mut [K]) {
    let mut group: Vec<&mut K> = sketches.iter_mut().collect();
    K::merge_many(&mut group);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottomk::BottomKSampler;
    use crate::poisson::{ObliviousPoissonSampler, PpsPoissonSampler};
    use crate::rank::PpsRanks;
    use crate::varopt::VarOptScheme;

    fn records(n: u64) -> Vec<(Key, f64)> {
        (0..n).map(|k| (k, 0.5 + (k % 7) as f64)).collect()
    }

    /// Ingests `records` into a single sketch and via `shards`-way key
    /// partitioning + merge tree, and returns both finalized samples.
    fn single_vs_sharded<S: SamplingScheme>(
        scheme: &S,
        recs: &[(Key, f64)],
        shards: usize,
        seeds: &SeedAssignment,
    ) -> (InstanceSample, InstanceSample) {
        let mut single = scheme.sketch(seeds, 0);
        for &(k, v) in recs {
            single.ingest(k, v);
        }
        let mut pool: Vec<S::Sketch> = (0..shards)
            .map(|s| scheme.sketch_for_shard(seeds, 0, s as u64))
            .collect();
        for &(k, v) in recs {
            pool[crate::hash::mix64(k) as usize % shards].ingest(k, v);
        }
        merge_tree(&mut pool);
        (single.finalize(), pool[0].finalize())
    }

    #[test]
    fn merge_tree_is_bit_identical_for_hash_seeded_schemes() {
        let recs = records(500);
        let seeds = SeedAssignment::independent_known(42);
        for shards in [1, 2, 3, 4, 7] {
            let (a, b) = single_vs_sharded(&PpsPoissonSampler::new(8.0), &recs, shards, &seeds);
            assert_eq!(a, b, "pps, {shards} shards");
            let (a, b) =
                single_vs_sharded(&ObliviousPoissonSampler::new(0.3), &recs, shards, &seeds);
            assert_eq!(a, b, "oblivious, {shards} shards");
            let (a, b) =
                single_vs_sharded(&BottomKSampler::new(PpsRanks, 32), &recs, shards, &seeds);
            assert_eq!(a, b, "bottom-k, {shards} shards");
        }
    }

    #[test]
    fn merge_tree_preserves_varopt_size_invariant() {
        let recs = records(800);
        let seeds = SeedAssignment::independent_known(9);
        let (single, sharded) = single_vs_sharded(&VarOptScheme::new(64), &recs, 4, &seeds);
        assert_eq!(single.len(), 64);
        assert_eq!(sharded.len(), 64);
    }

    #[test]
    fn sketches_are_reusable_after_finalize_and_reset() {
        let scheme = PpsPoissonSampler::new(4.0);
        let seeds_a = SeedAssignment::independent_known(1);
        let seeds_b = SeedAssignment::independent_known(2);
        let recs = records(200);
        let mut sketch = scheme.sketch(&seeds_a, 0);
        for &(k, v) in &recs {
            sketch.ingest(k, v);
        }
        let first = sketch.finalize();
        assert_eq!(sketch.ingested(), 0, "finalize drains the sketch");
        sketch.reset(&seeds_b, 3);
        for &(k, v) in &recs {
            sketch.ingest(k, v);
        }
        let second = sketch.finalize();
        assert_eq!(second.instance_index, 3);
        assert_ne!(first.sorted_keys(), second.sorted_keys());
        // Resetting back to the first randomization reproduces it exactly.
        sketch.reset(&seeds_a, 0);
        for &(k, v) in &recs {
            sketch.ingest(k, v);
        }
        assert_eq!(sketch.finalize(), first);
    }

    #[test]
    fn scheme_names_are_distinct() {
        assert_eq!(
            ObliviousPoissonSampler::new(0.5).name(),
            "oblivious_poisson"
        );
        assert_eq!(PpsPoissonSampler::new(2.0).name(), "pps_poisson");
        assert_eq!(BottomKSampler::new(PpsRanks, 4).name(), "bottomk_pps");
        assert_eq!(VarOptScheme::new(4).name(), "varopt");
    }
}
