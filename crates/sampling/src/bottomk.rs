//! Bottom-k (order) sampling (Section 7.1).
//!
//! Every positive-valued key draws a rank from the weight-dependent rank
//! family; the sample consists of the `k` smallest-ranked keys.  With PPS
//! ranks this is *priority sampling*; with EXP ranks it is weighted sampling
//! without replacement.
//!
//! The `(k+1)`-st smallest rank is recorded as the sample's threshold.  Under
//! the *rank-conditioning* (RC) method (Duffield–Lund–Thorup, Cohen–Kaplan),
//! conditioning on that threshold lets a bottom-k sample be treated as a
//! Poisson sample with per-key inclusion probability `F_v(threshold)`, which
//! is how [`InstanceSample::inclusion_probability`] computes it.
//!
//! Summarization is one-pass with `O(k)` memory and *mergeable*: because a
//! key's rank is a pure function of `(seed, value)`, the `k + 1`
//! smallest-ranked keys of a stream are always contained in the union of the
//! `k + 1` smallest of its shards, so merging per-shard
//! [`BottomKSketch`]es (or [`BottomKBuilder`]s) and re-trimming reproduces
//! the single-stream sample bit for bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pie_store::StoreError;

use crate::instance::{Instance, Key};
use crate::rank::{ExpRanks, PpsRanks, RankFamily};
use crate::sample::{InstanceSample, RankKind, SampleScheme};
use crate::scheme::{sketch_tag, SamplingScheme, Sketch};
use crate::seed::SeedAssignment;

/// An entry in the streaming bottom-k heap, ordered by rank (max-heap so the
/// largest retained rank is at the top and can be evicted in `O(log k)`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    rank: f64,
    key: Key,
    value: f64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ranks are finite positive floats here; break ties by key for determinism.
        self.rank
            .partial_cmp(&other.rank)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bottom-k sampler over a rank family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottomKSampler<R: RankFamily> {
    family: R,
    k: usize,
}

/// Priority sampling: bottom-k with PPS ranks.
pub type PrioritySampler = BottomKSampler<PpsRanks>;

/// Weighted sampling without replacement: bottom-k with EXP ranks.
pub type WsWithoutReplacementSampler = BottomKSampler<ExpRanks>;

impl<R: RankFamily> BottomKSampler<R> {
    /// Creates a bottom-k sampler retaining the `k > 0` smallest-ranked keys.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(family: R, k: usize) -> Self {
        assert!(k > 0, "bottom-k sample size must be positive");
        Self { family, k }
    }

    /// The sample size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The rank family in use.
    #[must_use]
    pub fn family(&self) -> &R {
        &self.family
    }

    /// Samples `instance` — a thin batch wrapper over streaming
    /// ingest-then-finalize — producing the `k` smallest-ranked positive keys
    /// and recording the `(k+1)`-st smallest rank as the threshold.
    #[must_use]
    pub fn sample(
        &self,
        instance: &Instance,
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> InstanceSample {
        let mut sketch = self.sketch(seeds, instance_index);
        for (key, value) in instance.iter() {
            sketch.ingest(key, value);
        }
        sketch.finalize()
    }

    /// The rank a given `(key, value)` would receive with the supplied seeds —
    /// exposed so callers can reproduce the paper's worked example (Figure 5(B)).
    #[must_use]
    pub fn rank_of(
        &self,
        key: Key,
        value: f64,
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> f64 {
        self.family
            .rank_from_seed(seeds.seed(key, instance_index), value)
    }
}

fn rank_kind_of<R: RankFamily>(family: &R) -> RankKind {
    match family.name() {
        "pps" => RankKind::Pps,
        _ => RankKind::Exp,
    }
}

/// Streaming builder for bottom-k samples: offer `(key, value, seed)` triples
/// one at a time, keeping only `k + 1` candidates in memory.
#[derive(Debug, Clone)]
pub struct BottomKBuilder<R: RankFamily> {
    family: R,
    k: usize,
    /// Max-heap of the best (smallest-rank) `k + 1` entries seen so far; the
    /// extra entry supplies the threshold rank.
    heap: BinaryHeap<HeapEntry>,
    offered: usize,
}

impl<R: RankFamily> BottomKBuilder<R> {
    /// Creates an empty builder.
    #[must_use]
    pub fn new(family: R, k: usize) -> Self {
        assert!(k > 0, "bottom-k sample size must be positive");
        Self {
            family,
            k,
            heap: BinaryHeap::with_capacity(k + 2),
            offered: 0,
        }
    }

    /// Offers one `(key, value)` pair with its uniform seed.
    ///
    /// Zero-valued keys are ignored (their rank is infinite).
    pub fn offer(&mut self, key: Key, value: f64, seed: f64) {
        if value <= 0.0 {
            return;
        }
        self.offered += 1;
        let rank = self.family.rank_from_seed(seed, value);
        if !rank.is_finite() {
            return;
        }
        self.heap.push(HeapEntry { rank, key, value });
        if self.heap.len() > self.k + 1 {
            self.heap.pop();
        }
    }

    /// Number of positive-valued keys offered so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Merges `other` — a builder over a disjoint shard of the same stream —
    /// into `self`, draining it.
    ///
    /// Each builder retains its shard's `k + 1` smallest ranks; the stream's
    /// `k + 1` smallest are contained in the union of those candidate sets,
    /// so pushing and re-trimming reproduces single-stream summarization
    /// exactly.
    ///
    /// # Panics
    /// Panics if the two builders have different `k`.
    pub fn merge(&mut self, other: &mut Self) {
        assert_eq!(
            self.k, other.k,
            "cannot merge bottom-k builders of different k"
        );
        self.offered += std::mem::take(&mut other.offered);
        for e in other.heap.drain() {
            self.heap.push(e);
            if self.heap.len() > self.k + 1 {
                self.heap.pop();
            }
        }
    }

    /// Clears the builder for reuse, retaining heap capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.offered = 0;
    }

    /// Finalizes the sample, draining the builder (which stays reusable).
    #[must_use]
    pub fn take_sample(&mut self, instance_index: u64, ranks: RankKind) -> InstanceSample {
        let mut entries_sorted: Vec<HeapEntry> = self.heap.drain().collect();
        self.offered = 0;
        entries_sorted.sort_unstable();
        // Ascending by rank; the last entry (if we have k + 1) is the
        // threshold and is excluded from the sample.
        let threshold = if entries_sorted.len() > self.k {
            entries_sorted.pop().map_or(f64::INFINITY, |e| e.rank)
        } else {
            f64::INFINITY
        };
        InstanceSample::new(
            instance_index,
            SampleScheme::BottomK { k: self.k, ranks },
            threshold,
            entries_sorted.into_iter().map(|e| (e.key, e.value)),
        )
    }

    /// Finalizes the sample, consuming the builder.
    #[must_use]
    pub fn finish(mut self, instance_index: u64, ranks: RankKind) -> InstanceSample {
        self.take_sample(instance_index, ranks)
    }
}

impl<R: RankFamily> SamplingScheme for BottomKSampler<R> {
    type Sketch = BottomKSketch<R>;

    fn name(&self) -> &'static str {
        match self.family.name() {
            "pps" => "bottomk_pps",
            _ => "bottomk_exp",
        }
    }

    fn sketch(&self, seeds: &SeedAssignment, instance_index: u64) -> Self::Sketch {
        BottomKSketch {
            builder: BottomKBuilder::new(self.family.clone(), self.k),
            ranks: rank_kind_of(&self.family),
            seeds: *seeds,
            instance_index,
        }
    }
}

/// Streaming bottom-k state: a bounded `k + 1` heap of the smallest ranks
/// seen in this shard, with ranks derived from the hash-seed assignment.
#[derive(Debug, Clone)]
pub struct BottomKSketch<R: RankFamily> {
    builder: BottomKBuilder<R>,
    ranks: RankKind,
    seeds: SeedAssignment,
    instance_index: u64,
}

impl<R: RankFamily> Sketch for BottomKSketch<R> {
    fn ingest(&mut self, key: Key, weight: f64) {
        self.builder
            .offer(key, weight, self.seeds.seed(key, self.instance_index));
    }

    fn merge(&mut self, other: &mut Self) {
        assert_eq!(
            self.instance_index, other.instance_index,
            "cannot merge bottom-k sketches of different instances"
        );
        self.builder.merge(&mut other.builder);
    }

    fn finalize(&mut self) -> InstanceSample {
        self.builder.take_sample(self.instance_index, self.ranks)
    }

    fn reset(&mut self, seeds: &SeedAssignment, instance_index: u64) {
        self.seeds = *seeds;
        self.instance_index = instance_index;
        self.builder.clear();
    }

    fn ingested(&self) -> usize {
        self.builder.offered()
    }
}

impl<R: RankFamily> pie_store::Encode for BottomKSketch<R> {
    /// Heap entries are written sorted by `(rank, key)` — the heap's internal
    /// array order depends on insertion history, so sorting is what makes the
    /// encoding canonical (equal sketch states ⇒ identical bytes).
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        sketch_tag::BOTTOM_K.encode(w)?;
        self.ranks.encode(w)?;
        self.builder.k.encode(w)?;
        self.builder.offered.encode(w)?;
        self.seeds.encode(w)?;
        self.instance_index.encode(w)?;
        let mut entries: Vec<HeapEntry> = self.builder.heap.iter().copied().collect();
        entries.sort_unstable();
        entries.len().encode(w)?;
        for e in &entries {
            e.rank.encode(w)?;
            e.key.encode(w)?;
            e.value.encode(w)?;
        }
        Ok(())
    }
}

impl<R: RankFamily + Default> pie_store::Decode for BottomKSketch<R> {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let tag = u32::decode(r)?;
        if tag != sketch_tag::BOTTOM_K {
            return Err(StoreError::InvalidTag {
                what: "BottomKSketch",
                tag,
            });
        }
        let family = R::default();
        let ranks = RankKind::decode(r)?;
        if ranks != rank_kind_of(&family) {
            return Err(StoreError::InvalidValue {
                what: "bottom-k snapshot was written with a different rank family",
            });
        }
        let k = usize::decode(r)?;
        if k == 0 {
            return Err(StoreError::InvalidValue {
                what: "bottom-k sample size must be positive",
            });
        }
        let offered = usize::decode(r)?;
        let seeds = SeedAssignment::decode(r)?;
        let instance_index = u64::decode(r)?;
        let len = usize::decode(r)?;
        if len > k + 1 {
            return Err(StoreError::InvalidValue {
                what: "bottom-k snapshot holds more than k + 1 candidates",
            });
        }
        let mut builder = BottomKBuilder::new(family, k);
        builder.offered = offered;
        for _ in 0..len {
            let rank = f64::decode(r)?;
            let key = Key::decode(r)?;
            let value = f64::decode(r)?;
            if !rank.is_finite() || !value.is_finite() {
                return Err(StoreError::InvalidValue {
                    what: "bottom-k candidate rank and value must be finite",
                });
            }
            builder.heap.push(HeapEntry { rank, key, value });
        }
        Ok(Self {
            builder,
            ranks,
            seeds,
            instance_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance_of(n: u64) -> Instance {
        Instance::from_pairs((0..n).map(|k| (k, 1.0 + (k % 5) as f64)))
    }

    #[test]
    fn sample_has_exactly_k_keys_when_enough_data() {
        let inst = instance_of(1000);
        let seeds = SeedAssignment::independent_known(1);
        let s = BottomKSampler::new(PpsRanks, 32).sample(&inst, &seeds, 0);
        assert_eq!(s.len(), 32);
        assert!(s.threshold.is_finite());
    }

    #[test]
    fn sample_keeps_everything_when_fewer_than_k_keys() {
        let inst = instance_of(5);
        let seeds = SeedAssignment::independent_known(1);
        let s = BottomKSampler::new(PpsRanks, 32).sample(&inst, &seeds, 0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.threshold, f64::INFINITY);
        // With infinite threshold every positive key has inclusion probability 1.
        assert_eq!(s.inclusion_probability(3.0), 1.0);
    }

    #[test]
    fn sampled_keys_have_smallest_ranks() {
        let inst = instance_of(200);
        let seeds = SeedAssignment::independent_known(9);
        let sampler = BottomKSampler::new(PpsRanks, 10);
        let s = sampler.sample(&inst, &seeds, 0);
        // Every non-sampled key must have rank >= threshold; every sampled key < threshold.
        for (key, value) in inst.iter() {
            let rank = sampler.rank_of(key, value, &seeds, 0);
            if s.contains(key) {
                assert!(
                    rank <= s.threshold,
                    "sampled key {key} has rank above threshold"
                );
            } else {
                assert!(
                    rank >= s.threshold,
                    "missed key {key} has rank below threshold"
                );
            }
        }
    }

    #[test]
    fn zero_valued_keys_never_sampled() {
        let mut inst = instance_of(50);
        inst.set(999, 0.0);
        let seeds = SeedAssignment::independent_known(2);
        let s = BottomKSampler::new(ExpRanks, 10).sample(&inst, &seeds, 0);
        assert!(!s.contains(999));
    }

    #[test]
    fn heavier_keys_sampled_more_often() {
        // One heavy key among light keys should appear in nearly every priority sample.
        let mut inst = Instance::from_pairs((0..500u64).map(|k| (k, 1.0)));
        inst.set(1000, 500.0);
        let mut hits = 0;
        let reps = 200;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(rep);
            let s = BottomKSampler::new(PpsRanks, 20).sample(&inst, &seeds, 0);
            if s.contains(1000) {
                hits += 1;
            }
        }
        assert!(
            hits as f64 > 0.95 * reps as f64,
            "heavy key sampled only {hits}/{reps}"
        );
    }

    #[test]
    fn rank_conditioned_ht_estimate_of_total_is_unbiased() {
        // Subset-sum (here: total) estimation over priority samples should be
        // approximately unbiased across repetitions.
        let inst = Instance::from_pairs((0..400u64).map(|k| (k, 1.0 + (k % 11) as f64)));
        let truth = inst.total();
        let reps = 400u64;
        let mut sum = 0.0;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(rep);
            let s = BottomKSampler::new(PpsRanks, 50).sample(&inst, &seeds, 0);
            sum += s.ht_subset_sum(|_| true);
        }
        let mean = sum / reps as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(rel_err < 0.05, "relative bias {rel_err}");
    }

    #[test]
    fn exp_ranks_rank_conditioned_estimate_is_unbiased() {
        let inst = Instance::from_pairs((0..300u64).map(|k| (k, 0.5 + (k % 7) as f64)));
        let truth = inst.total();
        let reps = 400u64;
        let mut sum = 0.0;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(1_000 + rep);
            let s = BottomKSampler::new(ExpRanks, 40).sample(&inst, &seeds, 0);
            sum += s.ht_subset_sum(|_| true);
        }
        let mean = sum / reps as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(rel_err < 0.05, "relative bias {rel_err}");
    }

    #[test]
    fn streaming_builder_matches_batch_sampler() {
        let inst = instance_of(300);
        let seeds = SeedAssignment::independent_known(4);
        let batch = BottomKSampler::new(PpsRanks, 25).sample(&inst, &seeds, 3);
        let mut builder = BottomKBuilder::new(PpsRanks, 25);
        for (key, value) in inst.iter() {
            builder.offer(key, value, seeds.seed(key, 3));
        }
        let streamed = builder.finish(3, RankKind::Pps);
        assert_eq!(batch.sorted_keys(), streamed.sorted_keys());
        assert_eq!(batch.threshold, streamed.threshold);
    }

    #[test]
    fn shared_seeds_with_equal_instances_give_identical_samples() {
        let inst = instance_of(500);
        let seeds = SeedAssignment::shared(77);
        let s0 = BottomKSampler::new(PpsRanks, 30).sample(&inst, &seeds, 0);
        let s1 = BottomKSampler::new(PpsRanks, 30).sample(&inst, &seeds, 1);
        assert_eq!(s0.sorted_keys(), s1.sorted_keys());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let _ = BottomKSampler::new(PpsRanks, 0);
    }
}
