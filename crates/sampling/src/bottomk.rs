//! Bottom-k (order) sampling (Section 7.1).
//!
//! Every positive-valued key draws a rank from the weight-dependent rank
//! family; the sample consists of the `k` smallest-ranked keys.  With PPS
//! ranks this is *priority sampling*; with EXP ranks it is weighted sampling
//! without replacement.
//!
//! The `(k+1)`-st smallest rank is recorded as the sample's threshold.  Under
//! the *rank-conditioning* (RC) method (Duffield–Lund–Thorup, Cohen–Kaplan),
//! conditioning on that threshold lets a bottom-k sample be treated as a
//! Poisson sample with per-key inclusion probability `F_v(threshold)`, which
//! is how [`InstanceSample::inclusion_probability`] computes it.
//!
//! Summarization is one-pass with `O(k)` memory and *mergeable*: because a
//! key's rank is a pure function of `(seed, value)`, the `k + 1`
//! smallest-ranked keys of a stream are always contained in the union of the
//! `k + 1` smallest of its shards, so merging per-shard
//! [`BottomKSketch`]es (or [`BottomKBuilder`]s) and re-trimming reproduces
//! the single-stream sample bit for bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pie_store::StoreError;

use crate::instance::{Instance, Key};
use crate::rank::{ExpRanks, PpsRanks, RankFamily};
use crate::sample::{InstanceSample, RankKind, SampleScheme};
use crate::scheme::{sketch_tag, SamplingScheme, Sketch};
use crate::seed::SeedAssignment;

/// An entry in the streaming bottom-k heap, ordered by rank (max-heap so the
/// largest retained rank is at the top and can be evicted in `O(log k)`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    rank: f64,
    key: Key,
    value: f64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        #[cfg(test)]
        tests::count_comparison();
        // Ranks are finite positive floats here; break ties by key for determinism.
        self.rank
            .partial_cmp(&other.rank)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bottom-k sampler over a rank family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottomKSampler<R: RankFamily> {
    family: R,
    k: usize,
}

/// Priority sampling: bottom-k with PPS ranks.
pub type PrioritySampler = BottomKSampler<PpsRanks>;

/// Weighted sampling without replacement: bottom-k with EXP ranks.
pub type WsWithoutReplacementSampler = BottomKSampler<ExpRanks>;

impl<R: RankFamily> BottomKSampler<R> {
    /// Creates a bottom-k sampler retaining the `k > 0` smallest-ranked keys.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(family: R, k: usize) -> Self {
        assert!(k > 0, "bottom-k sample size must be positive");
        Self { family, k }
    }

    /// The sample size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The rank family in use.
    #[must_use]
    pub fn family(&self) -> &R {
        &self.family
    }

    /// Samples `instance` — a thin batch wrapper over streaming
    /// ingest-then-finalize — producing the `k` smallest-ranked positive keys
    /// and recording the `(k+1)`-st smallest rank as the threshold.
    #[must_use]
    pub fn sample(
        &self,
        instance: &Instance,
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> InstanceSample {
        let mut sketch = self.sketch(seeds, instance_index);
        for (key, value) in instance.iter() {
            sketch.ingest(key, value);
        }
        sketch.finalize()
    }

    /// The rank a given `(key, value)` would receive with the supplied seeds —
    /// exposed so callers can reproduce the paper's worked example (Figure 5(B)).
    #[must_use]
    pub fn rank_of(
        &self,
        key: Key,
        value: f64,
        seeds: &SeedAssignment,
        instance_index: u64,
    ) -> f64 {
        self.family
            .rank_from_seed(seeds.seed(key, instance_index), value)
    }
}

fn rank_kind_of<R: RankFamily>(family: &R) -> RankKind {
    match family.name() {
        "pps" => RankKind::Pps,
        _ => RankKind::Exp,
    }
}

/// Streaming builder for bottom-k samples: offer `(key, value, seed)` triples
/// one at a time, keeping only `k + 1` candidates in memory.
#[derive(Debug, Clone)]
pub struct BottomKBuilder<R: RankFamily> {
    family: R,
    k: usize,
    /// Max-heap of the best (smallest-rank) `k + 1` entries seen so far; the
    /// extra entry supplies the threshold rank.
    heap: BinaryHeap<HeapEntry>,
    offered: usize,
}

impl<R: RankFamily> BottomKBuilder<R> {
    /// Creates an empty builder.
    #[must_use]
    pub fn new(family: R, k: usize) -> Self {
        assert!(k > 0, "bottom-k sample size must be positive");
        Self {
            family,
            k,
            heap: BinaryHeap::with_capacity(k + 2),
            offered: 0,
        }
    }

    /// Offers one `(key, value)` pair with its uniform seed.
    ///
    /// Zero-valued keys are ignored (their rank is infinite).
    pub fn offer(&mut self, key: Key, value: f64, seed: f64) {
        if value <= 0.0 {
            return;
        }
        self.offered += 1;
        let rank = self.family.rank_from_seed(seed, value);
        if !rank.is_finite() {
            return;
        }
        let entry = HeapEntry { rank, key, value };
        if self.heap.len() > self.k {
            // The heap already holds its k + 1 candidates.  A candidate that
            // does not beat the largest retained (rank, key) would be pushed
            // and then popped right back out — under the strict (rank, key)
            // order the pop would select the candidate itself — so the
            // steady-state cost of a non-surviving record is one comparison
            // against the root instead of a full O(log k) sift.
            if *self.heap.peek().expect("heap is non-empty") <= entry {
                return;
            }
            self.heap.push(entry);
            self.heap.pop();
        } else {
            self.heap.push(entry);
        }
    }

    /// Number of positive-valued keys offered so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Merges `other` — a builder over a disjoint shard of the same stream —
    /// into `self`, draining it.
    ///
    /// Each builder retains its shard's `k + 1` smallest ranks; the stream's
    /// `k + 1` smallest are contained in the union of those candidate sets,
    /// so selecting the `k + 1` smallest of the union reproduces
    /// single-stream summarization exactly.
    ///
    /// # Panics
    /// Panics if the two builders have different `k`.
    pub fn merge(&mut self, other: &mut Self) {
        self.merge_many(std::iter::once(other));
    }

    /// Merges a whole group of sibling builders into `self` in one pass,
    /// draining them.
    ///
    /// All candidates are gathered and the `k + 1` smallest `(rank, key)`
    /// pairs are kept with a single bounded selection — O(total candidates)
    /// comparisons, versus the O(shards · k log k) re-heapification a
    /// pairwise merge tree pays.  Keys are unique across shards of one
    /// logical stream, so `(rank, key)` is a strict total order and the
    /// retained set (hence the finalized sample) is identical whichever
    /// merge strategy ran.
    ///
    /// # Panics
    /// Panics if any builder has a different `k`.
    pub fn merge_many<'a, I>(&mut self, others: I)
    where
        R: 'a,
        I: IntoIterator<Item = &'a mut Self>,
    {
        // Lazily taken: when every sibling is empty (the grouped single-worker
        // ingest path leaves all records in one builder) `self.heap` is
        // already the answer and no rebuild happens at all.
        let mut candidates: Option<Vec<HeapEntry>> = None;
        for other in others {
            assert_eq!(
                self.k, other.k,
                "cannot merge bottom-k builders of different k"
            );
            self.offered += std::mem::take(&mut other.offered);
            if other.heap.is_empty() {
                continue;
            }
            candidates
                .get_or_insert_with(|| std::mem::take(&mut self.heap).into_vec())
                .extend(other.heap.drain());
        }
        let Some(mut candidates) = candidates else {
            return;
        };
        let keep = self.k + 1;
        if candidates.len() > keep {
            // Partition so the k + 1 smallest (rank, key) pairs occupy the
            // front, in any order — the heap rebuild below does not care.
            candidates.select_nth_unstable_by(keep - 1, HeapEntry::cmp);
            candidates.truncate(keep);
        }
        self.heap = BinaryHeap::from(candidates);
    }

    /// Clears the builder for reuse, retaining heap capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.offered = 0;
    }

    /// Finalizes the sample, draining the builder (which stays reusable).
    #[must_use]
    pub fn take_sample(&mut self, instance_index: u64, ranks: RankKind) -> InstanceSample {
        let mut entries_sorted: Vec<HeapEntry> = self.heap.drain().collect();
        self.offered = 0;
        entries_sorted.sort_unstable();
        // Ascending by rank; the last entry (if we have k + 1) is the
        // threshold and is excluded from the sample.
        let threshold = if entries_sorted.len() > self.k {
            entries_sorted.pop().map_or(f64::INFINITY, |e| e.rank)
        } else {
            f64::INFINITY
        };
        InstanceSample::new(
            instance_index,
            SampleScheme::BottomK { k: self.k, ranks },
            threshold,
            entries_sorted.into_iter().map(|e| (e.key, e.value)),
        )
    }

    /// Finalizes the sample, consuming the builder.
    #[must_use]
    pub fn finish(mut self, instance_index: u64, ranks: RankKind) -> InstanceSample {
        self.take_sample(instance_index, ranks)
    }
}

impl<R: RankFamily> SamplingScheme for BottomKSampler<R> {
    type Sketch = BottomKSketch<R>;

    fn name(&self) -> &'static str {
        match self.family.name() {
            "pps" => "bottomk_pps",
            _ => "bottomk_exp",
        }
    }

    fn sketch(&self, seeds: &SeedAssignment, instance_index: u64) -> Self::Sketch {
        BottomKSketch {
            builder: BottomKBuilder::new(self.family.clone(), self.k),
            ranks: rank_kind_of(&self.family),
            seeds: *seeds,
            instance_index,
        }
    }
}

/// Streaming bottom-k state: a bounded `k + 1` heap of the smallest ranks
/// seen in this shard, with ranks derived from the hash-seed assignment.
#[derive(Debug, Clone)]
pub struct BottomKSketch<R: RankFamily> {
    builder: BottomKBuilder<R>,
    ranks: RankKind,
    seeds: SeedAssignment,
    instance_index: u64,
}

impl<R: RankFamily> Sketch for BottomKSketch<R> {
    fn ingest(&mut self, key: Key, weight: f64) {
        self.builder
            .offer(key, weight, self.seeds.seed(key, self.instance_index));
    }

    fn merge(&mut self, other: &mut Self) {
        assert_eq!(
            self.instance_index, other.instance_index,
            "cannot merge bottom-k sketches of different instances"
        );
        self.builder.merge(&mut other.builder);
    }

    fn finalize(&mut self) -> InstanceSample {
        self.builder.take_sample(self.instance_index, self.ranks)
    }

    fn reset(&mut self, seeds: &SeedAssignment, instance_index: u64) {
        self.seeds = *seeds;
        self.instance_index = instance_index;
        self.builder.clear();
    }

    fn ingested(&self) -> usize {
        self.builder.offered()
    }

    fn merge_many(group: &mut [&mut Self]) {
        let Some((first, rest)) = group.split_first_mut() else {
            return;
        };
        for other in rest.iter() {
            assert_eq!(
                first.instance_index, other.instance_index,
                "cannot merge bottom-k sketches of different instances"
            );
        }
        first
            .builder
            .merge_many(rest.iter_mut().map(|sketch| &mut sketch.builder));
    }

    /// Single-worker sharded ingest: the bottom-k retained state is a pure
    /// function of the record *set*, and the `k + 1` smallest ranks of the
    /// concatenated parts are exactly those of the logical stream, so the
    /// whole group's records are routed through one bounded candidate set
    /// instead of each shard retaining its own `k + 1`.  The group's merged
    /// and finalized sample is bit-identical to both the one-thread-per-shard
    /// path and single-stream ingestion; per-shard retention (which grows
    /// with shard count) is skipped entirely, which is what keeps shard
    /// scaling monotone on a single hardware thread.
    fn ingest_group(
        group: &mut [&mut Self],
        parts: &[&[(Key, f64)]],
        seeds: &SeedAssignment,
        instance_index: u64,
    ) {
        assert_eq!(
            group.len(),
            parts.len(),
            "group ingest needs one sketch per stream part"
        );
        for sketch in group.iter_mut() {
            sketch.reset(seeds, instance_index);
        }
        let Some(first) = group.first_mut() else {
            return;
        };
        for part in parts {
            for &(key, value) in *part {
                first.ingest(key, value);
            }
        }
    }
}

impl<R: RankFamily> pie_store::Encode for BottomKSketch<R> {
    /// Heap entries are written sorted by `(rank, key)` — the heap's internal
    /// array order depends on insertion history, so sorting is what makes the
    /// encoding canonical (equal sketch states ⇒ identical bytes).
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        sketch_tag::BOTTOM_K.encode(w)?;
        self.ranks.encode(w)?;
        self.builder.k.encode(w)?;
        self.builder.offered.encode(w)?;
        self.seeds.encode(w)?;
        self.instance_index.encode(w)?;
        let mut entries: Vec<HeapEntry> = self.builder.heap.iter().copied().collect();
        entries.sort_unstable();
        entries.len().encode(w)?;
        for e in &entries {
            e.rank.encode(w)?;
            e.key.encode(w)?;
            e.value.encode(w)?;
        }
        Ok(())
    }
}

impl<R: RankFamily + Default> pie_store::Decode for BottomKSketch<R> {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let tag = u32::decode(r)?;
        if tag != sketch_tag::BOTTOM_K {
            return Err(StoreError::InvalidTag {
                what: "BottomKSketch",
                tag,
            });
        }
        let family = R::default();
        let ranks = RankKind::decode(r)?;
        if ranks != rank_kind_of(&family) {
            return Err(StoreError::InvalidValue {
                what: "bottom-k snapshot was written with a different rank family",
            });
        }
        let k = usize::decode(r)?;
        if k == 0 {
            return Err(StoreError::InvalidValue {
                what: "bottom-k sample size must be positive",
            });
        }
        let offered = usize::decode(r)?;
        let seeds = SeedAssignment::decode(r)?;
        let instance_index = u64::decode(r)?;
        let len = usize::decode(r)?;
        if len > k + 1 {
            return Err(StoreError::InvalidValue {
                what: "bottom-k snapshot holds more than k + 1 candidates",
            });
        }
        let mut builder = BottomKBuilder::new(family, k);
        builder.offered = offered;
        for _ in 0..len {
            let rank = f64::decode(r)?;
            let key = Key::decode(r)?;
            let value = f64::decode(r)?;
            if !rank.is_finite() || !value.is_finite() {
                return Err(StoreError::InvalidValue {
                    what: "bottom-k candidate rank and value must be finite",
                });
            }
            builder.heap.push(HeapEntry { rank, key, value });
        }
        Ok(Self {
            builder,
            ranks,
            seeds,
            instance_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    thread_local! {
        /// Test-only instrumentation: every [`HeapEntry`] ordering comparison
        /// bumps this counter, letting tests pin the asymptotic cost of the
        /// group merge (O(total candidates), not O(shards · k log k)).
        static COMPARISONS: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn count_comparison() {
        COMPARISONS.with(|c| c.set(c.get() + 1));
    }

    fn reset_comparisons() {
        COMPARISONS.with(|c| c.set(0));
    }

    fn comparisons() -> u64 {
        COMPARISONS.with(Cell::get)
    }

    fn instance_of(n: u64) -> Instance {
        Instance::from_pairs((0..n).map(|k| (k, 1.0 + (k % 5) as f64)))
    }

    #[test]
    fn sample_has_exactly_k_keys_when_enough_data() {
        let inst = instance_of(1000);
        let seeds = SeedAssignment::independent_known(1);
        let s = BottomKSampler::new(PpsRanks, 32).sample(&inst, &seeds, 0);
        assert_eq!(s.len(), 32);
        assert!(s.threshold.is_finite());
    }

    #[test]
    fn sample_keeps_everything_when_fewer_than_k_keys() {
        let inst = instance_of(5);
        let seeds = SeedAssignment::independent_known(1);
        let s = BottomKSampler::new(PpsRanks, 32).sample(&inst, &seeds, 0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.threshold, f64::INFINITY);
        // With infinite threshold every positive key has inclusion probability 1.
        assert_eq!(s.inclusion_probability(3.0), 1.0);
    }

    #[test]
    fn sampled_keys_have_smallest_ranks() {
        let inst = instance_of(200);
        let seeds = SeedAssignment::independent_known(9);
        let sampler = BottomKSampler::new(PpsRanks, 10);
        let s = sampler.sample(&inst, &seeds, 0);
        // Every non-sampled key must have rank >= threshold; every sampled key < threshold.
        for (key, value) in inst.iter() {
            let rank = sampler.rank_of(key, value, &seeds, 0);
            if s.contains(key) {
                assert!(
                    rank <= s.threshold,
                    "sampled key {key} has rank above threshold"
                );
            } else {
                assert!(
                    rank >= s.threshold,
                    "missed key {key} has rank below threshold"
                );
            }
        }
    }

    #[test]
    fn zero_valued_keys_never_sampled() {
        let mut inst = instance_of(50);
        inst.set(999, 0.0);
        let seeds = SeedAssignment::independent_known(2);
        let s = BottomKSampler::new(ExpRanks, 10).sample(&inst, &seeds, 0);
        assert!(!s.contains(999));
    }

    #[test]
    fn heavier_keys_sampled_more_often() {
        // One heavy key among light keys should appear in nearly every priority sample.
        let mut inst = Instance::from_pairs((0..500u64).map(|k| (k, 1.0)));
        inst.set(1000, 500.0);
        let mut hits = 0;
        let reps = 200;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(rep);
            let s = BottomKSampler::new(PpsRanks, 20).sample(&inst, &seeds, 0);
            if s.contains(1000) {
                hits += 1;
            }
        }
        assert!(
            hits as f64 > 0.95 * reps as f64,
            "heavy key sampled only {hits}/{reps}"
        );
    }

    #[test]
    fn rank_conditioned_ht_estimate_of_total_is_unbiased() {
        // Subset-sum (here: total) estimation over priority samples should be
        // approximately unbiased across repetitions.
        let inst = Instance::from_pairs((0..400u64).map(|k| (k, 1.0 + (k % 11) as f64)));
        let truth = inst.total();
        let reps = 400u64;
        let mut sum = 0.0;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(rep);
            let s = BottomKSampler::new(PpsRanks, 50).sample(&inst, &seeds, 0);
            sum += s.ht_subset_sum(|_| true);
        }
        let mean = sum / reps as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(rel_err < 0.05, "relative bias {rel_err}");
    }

    #[test]
    fn exp_ranks_rank_conditioned_estimate_is_unbiased() {
        let inst = Instance::from_pairs((0..300u64).map(|k| (k, 0.5 + (k % 7) as f64)));
        let truth = inst.total();
        let reps = 400u64;
        let mut sum = 0.0;
        for rep in 0..reps {
            let seeds = SeedAssignment::independent_known(1_000 + rep);
            let s = BottomKSampler::new(ExpRanks, 40).sample(&inst, &seeds, 0);
            sum += s.ht_subset_sum(|_| true);
        }
        let mean = sum / reps as f64;
        let rel_err = (mean - truth).abs() / truth;
        assert!(rel_err < 0.05, "relative bias {rel_err}");
    }

    #[test]
    fn streaming_builder_matches_batch_sampler() {
        let inst = instance_of(300);
        let seeds = SeedAssignment::independent_known(4);
        let batch = BottomKSampler::new(PpsRanks, 25).sample(&inst, &seeds, 3);
        let mut builder = BottomKBuilder::new(PpsRanks, 25);
        for (key, value) in inst.iter() {
            builder.offer(key, value, seeds.seed(key, 3));
        }
        let streamed = builder.finish(3, RankKind::Pps);
        assert_eq!(batch.sorted_keys(), streamed.sorted_keys());
        assert_eq!(batch.threshold, streamed.threshold);
    }

    #[test]
    fn shared_seeds_with_equal_instances_give_identical_samples() {
        let inst = instance_of(500);
        let seeds = SeedAssignment::shared(77);
        let s0 = BottomKSampler::new(PpsRanks, 30).sample(&inst, &seeds, 0);
        let s1 = BottomKSampler::new(PpsRanks, 30).sample(&inst, &seeds, 1);
        assert_eq!(s0.sorted_keys(), s1.sorted_keys());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let _ = BottomKSampler::new(PpsRanks, 0);
    }

    /// Round-robin partition of `records` into per-shard sketches.
    fn sharded_sketches(
        sampler: &BottomKSampler<PpsRanks>,
        records: &[(Key, f64)],
        seeds: &SeedAssignment,
        shards: usize,
    ) -> Vec<BottomKSketch<PpsRanks>> {
        let mut sketches: Vec<_> = (0..shards).map(|_| sampler.sketch(seeds, 0)).collect();
        for (i, &(key, value)) in records.iter().enumerate() {
            sketches[i % shards].ingest(key, value);
        }
        sketches
    }

    #[test]
    fn group_merge_is_bit_identical_across_shard_counts() {
        let inst = instance_of(4000);
        let records: Vec<(Key, f64)> = inst.iter().collect();
        let seeds = SeedAssignment::independent_known(11);
        let sampler = BottomKSampler::new(PpsRanks, 64);
        let reference = {
            let mut sketches = sharded_sketches(&sampler, &records, &seeds, 1);
            sketches[0].finalize()
        };
        assert_eq!(reference.len(), 64);
        for shards in [1usize, 2, 3, 5, 8] {
            let mut sketches = sharded_sketches(&sampler, &records, &seeds, shards);
            let mut group: Vec<&mut _> = sketches.iter_mut().collect();
            Sketch::merge_many(&mut group);
            let merged = sketches[0].finalize();
            assert_eq!(
                reference.sorted_keys(),
                merged.sorted_keys(),
                "sampled key set diverged at {shards} shards"
            );
            assert!(
                reference.threshold == merged.threshold,
                "threshold diverged at {shards} shards: {} vs {}",
                reference.threshold,
                merged.threshold
            );
        }
    }

    #[test]
    fn group_ingest_collapse_matches_independent_shard_ingest() {
        let inst = instance_of(3000);
        let records: Vec<(Key, f64)> = inst.iter().collect();
        let seeds = SeedAssignment::independent_known(29);
        let sampler = BottomKSampler::new(PpsRanks, 48);
        for shards in [1usize, 3, 5] {
            let parts: Vec<Vec<(Key, f64)>> = (0..shards)
                .map(|s| {
                    records
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % shards == s)
                        .map(|(_, r)| *r)
                        .collect()
                })
                .collect();
            let part_slices: Vec<&[(Key, f64)]> = parts.iter().map(Vec::as_slice).collect();

            let independent = {
                let mut sketches: Vec<_> = (0..shards).map(|_| sampler.sketch(&seeds, 0)).collect();
                for (sketch, part) in sketches.iter_mut().zip(&parts) {
                    for &(key, value) in part {
                        sketch.ingest(key, value);
                    }
                }
                let mut group: Vec<&mut _> = sketches.iter_mut().collect();
                Sketch::merge_many(&mut group);
                sketches[0].finalize()
            };

            let collapsed = {
                let mut sketches: Vec<_> = (0..shards).map(|_| sampler.sketch(&seeds, 0)).collect();
                let mut group: Vec<&mut _> = sketches.iter_mut().collect();
                Sketch::ingest_group(&mut group, &part_slices, &seeds, 0);
                Sketch::merge_many(&mut group);
                sketches[0].finalize()
            };

            assert_eq!(independent.sorted_keys(), collapsed.sorted_keys());
            assert!(independent.threshold == collapsed.threshold);
        }
    }

    #[test]
    fn group_merge_comparisons_scale_with_total_candidates_not_shards() {
        let records: Vec<(Key, f64)> = (0..20_000u64).map(|k| (k, 1.0 + (k % 5) as f64)).collect();
        let seeds = SeedAssignment::independent_known(21);
        let k = 256usize;
        let shards = 8usize;
        let sampler = BottomKSampler::new(PpsRanks, k);
        let mut sketches = sharded_sketches(&sampler, &records, &seeds, shards);
        let total_candidates: usize = sketches.iter().map(|s| s.builder.heap.len()).sum();
        assert_eq!(total_candidates, shards * (k + 1));
        reset_comparisons();
        let mut group: Vec<&mut _> = sketches.iter_mut().collect();
        Sketch::merge_many(&mut group);
        let used = comparisons() as usize;
        // One bounded selection plus one heapify over the union is a small
        // constant times the candidate count.  The pairwise merge tree this
        // replaces paid O(shards · k log k) ≈ shards · k · log₂(k+1)
        // comparisons re-heapifying; pin that we are well under it.
        let linear_bound = 4 * total_candidates;
        let old_regime = shards * k * (usize::BITS - (k + 1).leading_zeros()) as usize;
        assert!(
            used <= linear_bound,
            "group merge used {used} comparisons for {total_candidates} candidates"
        );
        assert!(
            linear_bound < old_regime,
            "test is vacuous: linear bound {linear_bound} not below old regime {old_regime}"
        );
    }
}
