//! Seed assignments: the source of randomness used when sampling instances.
//!
//! The paper (Section 2) formalizes weighted sampling via a *seed vector*
//! `u ∈ [0,1]^r` with uniformly distributed entries: entry `i` of the data
//! vector is sampled iff `v_i ≥ τ_i(u_i)`.  Two joint distributions of the
//! seed vector matter:
//!
//! * **Independent** seeds — `u_1, …, u_r` are independent; the samples of
//!   different instances are independent.
//! * **Shared-seed (coordinated)** seeds — `u_1 = … = u_r`; similar instances
//!   receive similar samples, which benefits multi-instance estimation
//!   (Section 7.2).
//!
//! Orthogonally, seeds may be **known** to the estimator (hash-generated and
//! recomputable — the model of Section 5) or **unknown** (the model of
//! Section 6, where no nonnegative unbiased estimator exists for most
//! multi-instance functions).
//!
//! [`SeedAssignment`] captures a concrete choice of randomization.  All
//! variants are deterministic functions of `(key, instance)` given a salt, so
//! the *processing of one instance never depends on values in another* — the
//! dispersed-data constraint of Section 2.

use crate::hash::Hasher64;

/// How seeds of the same key are related across instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coordination {
    /// Every `(key, instance)` pair gets an independent uniform seed.
    Independent,
    /// All instances share a single per-key seed (`u_1 = … = u_r`), producing
    /// coordinated (PRN / consistent-rank) samples.
    SharedSeed,
}

/// Whether the seeds are available to the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedVisibility {
    /// Seeds are hash-generated and can be recomputed by the estimator
    /// (the "known seeds" model of Section 5).
    Known,
    /// Seeds are not available to the estimator (Section 6).  Sampling
    /// behaves the same; only the information exposed in outcomes changes.
    Unknown,
}

/// A deterministic assignment of uniform seeds to `(key, instance)` pairs.
///
/// The assignment is a pure function: calling [`SeedAssignment::seed`] twice
/// with the same arguments always returns the same value, which is what makes
/// the "known seeds" estimation model implementable in practice.
#[derive(Debug, Clone, Copy)]
pub struct SeedAssignment {
    hasher: Hasher64,
    coordination: Coordination,
    visibility: SeedVisibility,
}

impl SeedAssignment {
    /// Creates an independent, known-seed assignment (the main model of Section 5).
    #[must_use]
    pub fn independent_known(salt: u64) -> Self {
        Self {
            hasher: Hasher64::new(salt),
            coordination: Coordination::Independent,
            visibility: SeedVisibility::Known,
        }
    }

    /// Creates an independent, unknown-seed assignment (the model of Section 6).
    #[must_use]
    pub fn independent_unknown(salt: u64) -> Self {
        Self {
            hasher: Hasher64::new(salt),
            coordination: Coordination::Independent,
            visibility: SeedVisibility::Unknown,
        }
    }

    /// Creates a shared-seed (coordinated) known-seed assignment (Section 7.2).
    #[must_use]
    pub fn shared(salt: u64) -> Self {
        Self {
            hasher: Hasher64::new(salt),
            coordination: Coordination::SharedSeed,
            visibility: SeedVisibility::Known,
        }
    }

    /// Creates an assignment with explicit coordination and visibility.
    #[must_use]
    pub fn new(salt: u64, coordination: Coordination, visibility: SeedVisibility) -> Self {
        Self {
            hasher: Hasher64::new(salt),
            coordination,
            visibility,
        }
    }

    /// The coordination mode of this assignment.
    #[must_use]
    pub fn coordination(&self) -> Coordination {
        self.coordination
    }

    /// Whether estimators are allowed to observe these seeds.
    #[must_use]
    pub fn visibility(&self) -> SeedVisibility {
        self.visibility
    }

    /// Returns the uniform seed in `(0, 1)` for `key` in `instance`.
    ///
    /// For [`Coordination::SharedSeed`] the instance index is ignored, so all
    /// instances see the same per-key seed.
    #[inline]
    #[must_use]
    pub fn seed(&self, key: u64, instance: u64) -> f64 {
        match self.coordination {
            Coordination::Independent => self.hasher.open_unit_pair(key, instance),
            Coordination::SharedSeed => self.hasher.open_unit(key),
        }
    }

    /// Derives a deterministic 64-bit RNG seed for `(instance, shard)`.
    ///
    /// Schemes that need fresh (non-hash-seeded) randomness — VarOpt's
    /// eviction draws — use this to seed a per-sketch RNG: runs with the same
    /// salt are reproducible, while distinct shards of the same instance get
    /// decorrelated streams.  Per-key sampling seeds are untouched.
    #[inline]
    #[must_use]
    pub fn rng_seed(&self, instance: u64, shard: u64) -> u64 {
        self.hasher.hash_pair(instance, shard)
    }

    /// Returns the seed if it is visible to estimators, `None` otherwise.
    ///
    /// This is the accessor estimator-construction code should use: it makes
    /// it impossible to accidentally build a "known seeds" estimator on top of
    /// an unknown-seed sampling configuration.
    #[inline]
    #[must_use]
    pub fn visible_seed(&self, key: u64, instance: u64) -> Option<f64> {
        match self.visibility {
            SeedVisibility::Known => Some(self.seed(key, instance)),
            SeedVisibility::Unknown => None,
        }
    }
}

impl pie_store::Encode for Coordination {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        let tag: u32 = match self {
            Self::Independent => 0,
            Self::SharedSeed => 1,
        };
        tag.encode(w)
    }
}

impl pie_store::Decode for Coordination {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        match u32::decode(r)? {
            0 => Ok(Self::Independent),
            1 => Ok(Self::SharedSeed),
            tag => Err(pie_store::StoreError::InvalidTag {
                what: "Coordination",
                tag,
            }),
        }
    }
}

impl pie_store::Encode for SeedVisibility {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        let tag: u32 = match self {
            Self::Known => 0,
            Self::Unknown => 1,
        };
        tag.encode(w)
    }
}

impl pie_store::Decode for SeedVisibility {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        match u32::decode(r)? {
            0 => Ok(Self::Known),
            1 => Ok(Self::Unknown),
            tag => Err(pie_store::StoreError::InvalidTag {
                what: "SeedVisibility",
                tag,
            }),
        }
    }
}

impl pie_store::Encode for SeedAssignment {
    /// Writes the mixed hash salt plus the coordination and visibility tags;
    /// the decoded assignment reproduces every seed bit for bit.
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        self.hasher.encode(w)?;
        self.coordination.encode(w)?;
        self.visibility.encode(w)
    }
}

impl pie_store::Decode for SeedAssignment {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        Ok(Self {
            hasher: crate::hash::Hasher64::decode(r)?,
            coordination: Coordination::decode(r)?,
            visibility: SeedVisibility::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_seed_ignores_instance() {
        let s = SeedAssignment::shared(3);
        for key in 0..100u64 {
            assert_eq!(s.seed(key, 0), s.seed(key, 1));
            assert_eq!(s.seed(key, 0), s.seed(key, 17));
        }
    }

    #[test]
    fn independent_seed_differs_across_instances() {
        let s = SeedAssignment::independent_known(3);
        let mut diffs = 0;
        for key in 0..100u64 {
            if s.seed(key, 0) != s.seed(key, 1) {
                diffs += 1;
            }
        }
        assert_eq!(diffs, 100);
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = SeedAssignment::independent_known(9);
        let b = SeedAssignment::independent_known(9);
        for key in 0..50u64 {
            for inst in 0..3u64 {
                assert_eq!(a.seed(key, inst), b.seed(key, inst));
            }
        }
    }

    #[test]
    fn seeds_in_open_unit_interval() {
        let s = SeedAssignment::independent_known(11);
        for key in 0..1000u64 {
            let u = s.seed(key, key % 5);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn unknown_visibility_hides_seed() {
        let s = SeedAssignment::independent_unknown(5);
        assert_eq!(s.visible_seed(1, 0), None);
        let k = SeedAssignment::independent_known(5);
        assert_eq!(k.visible_seed(1, 0), Some(k.seed(1, 0)));
    }

    #[test]
    fn different_salts_give_different_assignments() {
        let a = SeedAssignment::independent_known(1);
        let b = SeedAssignment::independent_known(2);
        let same = (0..100u64)
            .filter(|&k| a.seed(k, 0) == b.seed(k, 0))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn independent_seeds_look_uniform() {
        let s = SeedAssignment::independent_known(123);
        let n = 20_000u64;
        let mean = (0..n).map(|k| s.seed(k, 1)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }
}
