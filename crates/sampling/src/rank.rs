//! Rank distributions for weighted sampling (Section 7.1).
//!
//! Bottom-k and Poisson samples are defined through a *random rank assignment*:
//! each key draws a rank from a weight-dependent distribution `f_w`, and either
//! the `k` smallest-ranked keys (bottom-k) or all keys below a threshold τ
//! (Poisson) are kept.  The paper uses two families:
//!
//! * **PPS ranks** — `f_w = U[0, 1/w]`, i.e. `rank = u / w`.  Poisson sampling
//!   with threshold τ then includes a key with probability `min(1, wτ)`
//!   (probability proportional to size); bottom-k with PPS ranks is *priority
//!   sampling*.
//! * **EXP ranks** — `rank ~ Exp(w)`, i.e. `rank = −ln(1−u)/w`.  Bottom-k with
//!   EXP ranks is weighted sampling without replacement; the minimum rank of a
//!   subpopulation is `Exp(Σw)`, which many sketch estimators exploit.
//!
//! A rank family is fully described by its per-weight CDF `F_w`; every sampler
//! in this crate is generic over [`RankFamily`].

/// A family of rank distributions `f_w`, one per weight `w ≥ 0`.
///
/// Implementations must guarantee that for fixed `u`, `rank_from_seed(u, w)` is
/// non-increasing in `w` (heavier keys get smaller ranks), which is what makes
/// shared-seed rank assignments *consistent* in the sense of Section 7.2.
pub trait RankFamily: std::fmt::Debug + Clone + Send + Sync {
    /// Human-readable name (used in reports and bench output).
    fn name(&self) -> &'static str;

    /// The rank obtained from a uniform seed `u ∈ (0,1)` and weight `w > 0`.
    ///
    /// Must equal `F_w^{-1}(u)`.  For `w = 0` the rank is `+∞` (a zero-weight
    /// key is never sampled by a weighted scheme).
    fn rank_from_seed(&self, u: f64, w: f64) -> f64;

    /// The CDF `F_w(x) = Pr[rank ≤ x]` for weight `w`.
    fn cdf(&self, w: f64, x: f64) -> f64;

    /// Probability that a key of weight `w` has rank below threshold `tau`,
    /// i.e. its inclusion probability under Poisson-τ sampling.
    fn inclusion_probability(&self, w: f64, tau: f64) -> f64 {
        self.cdf(w, tau)
    }

    /// The threshold τ giving a target expected sample size `k` over weights `ws`.
    ///
    /// Solves `Σ_i F_{w_i}(τ) = k` by bisection.  Returns `f64::INFINITY` when
    /// `k` is at least the number of positive weights (everything is sampled).
    fn threshold_for_expected_size(&self, ws: &[f64], k: f64) -> f64 {
        let positive = ws.iter().filter(|&&w| w > 0.0).count() as f64;
        if k >= positive {
            return f64::INFINITY;
        }
        if k <= 0.0 {
            return 0.0;
        }
        // Expected size is non-decreasing in tau; bisect on tau.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let expected = |tau: f64| ws.iter().map(|&w| self.cdf(w, tau)).sum::<f64>();
        while expected(hi) < k {
            hi *= 2.0;
            if hi > 1e300 {
                return f64::INFINITY;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if expected(mid) < k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// PPS ranks: `rank = u / w`, `F_w(x) = min(1, w·x)`.
///
/// Poisson sampling with these ranks is IPPS (inclusion probability
/// proportional to size); bottom-k sampling with these ranks is priority
/// sampling (Duffield–Lund–Thorup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PpsRanks;

impl RankFamily for PpsRanks {
    fn name(&self) -> &'static str {
        "pps"
    }

    #[inline]
    fn rank_from_seed(&self, u: f64, w: f64) -> f64 {
        if w <= 0.0 {
            f64::INFINITY
        } else {
            u / w
        }
    }

    #[inline]
    fn cdf(&self, w: f64, x: f64) -> f64 {
        if w <= 0.0 || x <= 0.0 {
            0.0
        } else {
            (w * x).min(1.0)
        }
    }
}

/// Exponential ranks: `rank ~ Exp(w)`, `F_w(x) = 1 − e^{−w·x}`.
///
/// Bottom-k sampling with these ranks is weighted sampling without
/// replacement; the minimum rank over a set of keys is exponentially
/// distributed with the total weight as its parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpRanks;

impl RankFamily for ExpRanks {
    fn name(&self) -> &'static str {
        "exp"
    }

    #[inline]
    fn rank_from_seed(&self, u: f64, w: f64) -> f64 {
        if w <= 0.0 {
            f64::INFINITY
        } else {
            -(-u).ln_1p() / w
        }
    }

    #[inline]
    fn cdf(&self, w: f64, x: f64) -> f64 {
        if w <= 0.0 || x <= 0.0 {
            0.0
        } else {
            (-w * x).exp_ln_1p_neg()
        }
    }
}

/// Helper extension: computes `1 - exp(v)` accurately for `v <= 0`.
trait ExpM1Neg {
    fn exp_ln_1p_neg(self) -> f64;
}

impl ExpM1Neg for f64 {
    #[inline]
    fn exp_ln_1p_neg(self) -> f64 {
        // 1 - e^v  computed as  -(e^v - 1) = -expm1(v), accurate for small |v|.
        -self.exp_m1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn pps_rank_matches_inverse_cdf() {
        let fam = PpsRanks;
        for &w in &[0.1, 1.0, 7.5] {
            for &u in &[0.01, 0.3, 0.77, 0.999] {
                let r = fam.rank_from_seed(u, w);
                assert_close(fam.cdf(w, r), u.min(fam.cdf(w, f64::INFINITY)), 1e-12);
            }
        }
    }

    #[test]
    fn exp_rank_matches_inverse_cdf() {
        let fam = ExpRanks;
        for &w in &[0.1, 1.0, 7.5] {
            for &u in &[0.01, 0.3, 0.77, 0.999] {
                let r = fam.rank_from_seed(u, w);
                assert_close(fam.cdf(w, r), u, 1e-10);
            }
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        assert_eq!(PpsRanks.rank_from_seed(0.5, 0.0), f64::INFINITY);
        assert_eq!(ExpRanks.rank_from_seed(0.5, 0.0), f64::INFINITY);
        assert_eq!(PpsRanks.cdf(0.0, 10.0), 0.0);
        assert_eq!(ExpRanks.cdf(0.0, 10.0), 0.0);
    }

    #[test]
    fn pps_inclusion_probability_is_min_1_w_tau() {
        let fam = PpsRanks;
        assert_close(fam.inclusion_probability(2.0, 0.25), 0.5, 1e-15);
        assert_close(fam.inclusion_probability(10.0, 0.25), 1.0, 1e-15);
        assert_close(fam.inclusion_probability(0.5, 0.25), 0.125, 1e-15);
    }

    #[test]
    fn ranks_decrease_with_weight_for_fixed_seed() {
        // Consistency property behind shared-seed coordination: larger value
        // => smaller rank, for the same seed.
        let u = 0.42;
        assert!(PpsRanks.rank_from_seed(u, 2.0) < PpsRanks.rank_from_seed(u, 1.0));
        assert!(ExpRanks.rank_from_seed(u, 2.0) < ExpRanks.rank_from_seed(u, 1.0));
    }

    #[test]
    fn threshold_for_expected_size_pps() {
        let fam = PpsRanks;
        let ws = vec![1.0, 2.0, 3.0, 4.0];
        let k = 2.0;
        let tau = fam.threshold_for_expected_size(&ws, k);
        let expected: f64 = ws.iter().map(|&w| fam.cdf(w, tau)).sum();
        assert_close(expected, k, 1e-6);
    }

    #[test]
    fn threshold_for_expected_size_exp() {
        let fam = ExpRanks;
        let ws = vec![0.5, 0.5, 5.0, 10.0, 0.1];
        let k = 3.0;
        let tau = fam.threshold_for_expected_size(&ws, k);
        let expected: f64 = ws.iter().map(|&w| fam.cdf(w, tau)).sum();
        assert_close(expected, k, 1e-6);
    }

    #[test]
    fn threshold_saturates_when_k_exceeds_support() {
        let fam = PpsRanks;
        let ws = vec![1.0, 0.0, 2.0];
        assert_eq!(fam.threshold_for_expected_size(&ws, 2.0), f64::INFINITY);
        assert_eq!(fam.threshold_for_expected_size(&ws, 5.0), f64::INFINITY);
    }

    #[test]
    fn exp_minimum_rank_distribution() {
        // Empirical check of the EXP-rank property: the minimum rank over keys of
        // total weight W is Exp(W).  Mean of Exp(W) is 1/W.
        use crate::hash::Hasher64;
        let fam = ExpRanks;
        let weights = [1.0, 2.0, 3.0]; // total 6
        let trials = 20_000;
        let mut sum_min = 0.0;
        for t in 0..trials {
            let h = Hasher64::new(t as u64);
            let min_rank = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| fam.rank_from_seed(h.open_unit(i as u64), w))
                .fold(f64::INFINITY, f64::min);
            sum_min += min_rank;
        }
        let mean = sum_min / trials as f64;
        assert!((mean - 1.0 / 6.0).abs() < 0.01, "mean {mean}");
    }
}
