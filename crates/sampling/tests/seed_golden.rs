//! Golden-value pins of the seed-derivation functions.
//!
//! Everything reproducible in this workspace bottoms out in
//! `SeedAssignment`: per-key sampling seeds, per-sketch RNG seeds
//! (`rng_seed`), and the per-trial salt derivation `base_salt + t` used by
//! the pipelines and evaluators.  These tests pin exact bit patterns so
//! that a change to the hash mixing — however innocuous it looks — fails
//! loudly: such a change silently invalidates every cross-process,
//! cross-version reproducibility guarantee (stream-vs-batch bit equality,
//! thread-count invariance, pinned report numbers).
//!
//! If one of these pins fails, the fix is to revert the hash change, not to
//! update the constants — the constants *are* the compatibility contract.

use pie_sampling::SeedAssignment;

/// `SeedAssignment::rng_seed` pins: `(salt, instance, shard) → seed`.
#[test]
fn rng_seed_golden_values() {
    let cases: [(u64, u64, u64, u64); 6] = [
        (0x0, 0, 0, 0x0a30_466c_e831_4b41),
        (0x0, 0, 1, 0x9404_6d0e_ac8f_bfe6),
        (0x0, 1, 0, 0xdd92_0ad5_d388_4069),
        (0x7, 3, 2, 0x0e54_4f53_6f0f_774d),
        (0x00C0_FFEE, 5, 7, 0x6db1_abeb_7cc4_e187),
        (u64::MAX, 1, 1, 0x7d20_e0b7_0a3c_c96a),
    ];
    for (salt, instance, shard, expected) in cases {
        let s = SeedAssignment::independent_known(salt);
        assert_eq!(
            s.rng_seed(instance, shard),
            expected,
            "rng_seed(salt {salt:#x}, instance {instance}, shard {shard})"
        );
    }
}

/// Independent known-seed pins: `(salt, key, instance) → seed bits`.
#[test]
fn independent_seed_golden_values() {
    let cases: [(u64, u64, u64, u64); 5] = [
        (0x0, 0, 0, 0x3fa4_608c_d9d0_629f),
        (0x0, 1, 0, 0x3feb_b241_5aba_7107),
        (0x0, 0, 1, 0x3fe2_808d_a1d5_91f7),
        (0xb, 42, 1, 0x3fe4_3cbe_a84e_a118),
        (0xBEEF, 123_456_789, 3, 0x3fe7_62a1_b9dc_6ed5),
    ];
    for (salt, key, instance, expected_bits) in cases {
        let s = SeedAssignment::independent_known(salt);
        assert_eq!(
            s.seed(key, instance).to_bits(),
            expected_bits,
            "seed(salt {salt:#x}, key {key}, instance {instance})"
        );
        // Visibility never changes the underlying seed value.
        let unknown = SeedAssignment::independent_unknown(salt);
        assert_eq!(unknown.seed(key, instance).to_bits(), expected_bits);
    }
}

/// Shared-seed (coordinated) pins: `(salt, key) → seed bits`, any instance.
#[test]
fn shared_seed_golden_values() {
    let cases: [(u64, u64, u64); 2] = [
        (0, 0, 0x3fec_4415_072f_63b8),
        (5, 99, 0x3fc0_3b2f_8200_36eb),
    ];
    for (salt, key, expected_bits) in cases {
        let s = SeedAssignment::shared(salt);
        for instance in [0, 1, 9] {
            assert_eq!(
                s.seed(key, instance).to_bits(),
                expected_bits,
                "shared seed(salt {salt}, key {key}, instance {instance})"
            );
        }
    }
}

/// Per-trial derivation pins: the pipelines and evaluators give trial `t`
/// the assignment `SeedAssignment::independent_known(base_salt + t)`
/// (wrapping).  Pin the seeds several trials would observe under the
/// documented base salt `0xC0FFEE`, plus the wrap-around edge.
#[test]
fn per_trial_salt_derivation_golden_values() {
    const BASE_SALT: u64 = 0xC0_FFEE;
    let cases: [(u64, u64, u64); 4] = [
        (0, 0x3fc1_79ce_ae92_d50b, 0x61e2_8006_6cee_8270),
        (1, 0x3fe6_9723_0780_dcbb, 0xe813_e115_9945_5b45),
        (2, 0x3fed_e344_0959_2789, 0x53c5_b131_9585_d32e),
        (999, 0x3fe5_6db8_98d4_2549, 0x0d35_8ca3_b608_9cad),
    ];
    for (trial, seed_bits, rng_seed) in cases {
        let s = SeedAssignment::independent_known(BASE_SALT.wrapping_add(trial));
        assert_eq!(
            s.seed(17, 0).to_bits(),
            seed_bits,
            "trial {trial} per-key seed"
        );
        assert_eq!(s.rng_seed(0, 0), rng_seed, "trial {trial} rng seed");
    }
    // Wrapping addition, not saturating: base u64::MAX, trial 2 lands on
    // salt 1 — the same assignment a base salt of 1 would produce.
    let wrapped = SeedAssignment::independent_known(u64::MAX.wrapping_add(2));
    let direct = SeedAssignment::independent_known(1);
    assert_eq!(wrapped.seed(17, 0).to_bits(), direct.seed(17, 0).to_bits());
    assert_eq!(wrapped.rng_seed(0, 0), direct.rng_seed(0, 0));
}
