//! Snapshot codec property tests: encode → decode is **bitwise** for every
//! sketch family (and for `InstanceSample`/`SeedAssignment`), at random
//! sample sizes and shard counts; malformed input — truncated, corrupted,
//! wrong version, wrong family — always yields a typed `StoreError`, never a
//! panic.
//!
//! "Bitwise" is asserted two ways:
//!
//! 1. re-encoding the decoded sketch reproduces the original bytes exactly
//!    (the encoding is canonical), and
//! 2. the decoded sketch *behaves* identically — continuing to ingest the
//!    same records and finalizing yields a bit-identical `InstanceSample`
//!    (for VarOpt this exercises the replayed RNG state).

use pie_sampling::{
    merge_tree, BottomKSampler, ExpRanks, InstanceSample, ObliviousPoissonSampler,
    PpsPoissonSampler, PpsRanks, SamplingScheme, SeedAssignment, Sketch, VarOptScheme,
};
use pie_store::{snapshot_from_slice, snapshot_to_vec, StoreError};
use proptest::prelude::*;

/// A deterministic synthetic record stream.
fn records(n: usize, salt: u64) -> Vec<(u64, f64)> {
    (0..n as u64)
        .map(|k| (k, 0.25 + ((k ^ salt) % 13) as f64))
        .collect()
}

/// Ingests `recs` into per-shard sketches of `scheme`, snapshots each shard
/// sketch mid-stream (after `split` records), and checks both bitwise
/// properties; then merges originals and decoded copies and compares the
/// final samples.
fn assert_roundtrip_bitwise<S: SamplingScheme>(
    scheme: &S,
    recs: &[(u64, f64)],
    shards: usize,
    split: usize,
    seeds: &SeedAssignment,
) where
    S::Sketch: pie_store::Encode + pie_store::Decode,
{
    let shard_of = |key: u64| (pie_sampling::hash::mix64(key) % shards as u64) as usize;
    let mut originals: Vec<S::Sketch> = (0..shards)
        .map(|s| scheme.sketch_for_shard(seeds, 0, s as u64))
        .collect();
    for &(k, v) in &recs[..split] {
        originals[shard_of(k)].ingest(k, v);
    }

    // Snapshot every shard sketch mid-stream.
    let mut decoded: Vec<S::Sketch> = Vec::with_capacity(shards);
    for sketch in &originals {
        let bytes = snapshot_to_vec(sketch).unwrap();
        let restored: S::Sketch = snapshot_from_slice(&bytes).unwrap();
        // (1) Canonical bytes: re-encoding the decoded sketch is identical.
        assert_eq!(snapshot_to_vec(&restored).unwrap(), bytes);
        decoded.push(restored);
    }

    // (2) Behavioral bit-identity: both copies finish the stream, merge, and
    // finalize to the same sample.
    for &(k, v) in &recs[split..] {
        originals[shard_of(k)].ingest(k, v);
        decoded[shard_of(k)].ingest(k, v);
    }
    merge_tree(&mut originals);
    merge_tree(&mut decoded);
    let a: InstanceSample = originals[0].finalize();
    let b: InstanceSample = decoded[0].finalize();
    assert_eq!(a, b);
    assert_eq!(
        snapshot_to_vec(&a).unwrap(),
        snapshot_to_vec(&b).unwrap(),
        "finalized samples must encode identically"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oblivious_poisson_roundtrip(salt in 0u64..1_000, n in 1usize..300, shards in 1usize..8, split_frac in 0.0f64..1.0, p in 0.05f64..1.0) {
        let recs = records(n, salt);
        let split = ((n as f64) * split_frac) as usize;
        let seeds = SeedAssignment::independent_known(salt);
        assert_roundtrip_bitwise(&ObliviousPoissonSampler::new(p), &recs, shards, split, &seeds);
    }

    #[test]
    fn pps_poisson_roundtrip(salt in 0u64..1_000, n in 1usize..300, shards in 1usize..8, split_frac in 0.0f64..1.0, tau in 0.5f64..50.0) {
        let recs = records(n, salt);
        let split = ((n as f64) * split_frac) as usize;
        let seeds = SeedAssignment::independent_known(salt.wrapping_add(7));
        assert_roundtrip_bitwise(&PpsPoissonSampler::new(tau), &recs, shards, split, &seeds);
    }

    #[test]
    fn bottomk_roundtrip_both_rank_families(salt in 0u64..1_000, n in 1usize..300, shards in 1usize..8, split_frac in 0.0f64..1.0, k in 1usize..64) {
        let recs = records(n, salt);
        let split = ((n as f64) * split_frac) as usize;
        let seeds = SeedAssignment::independent_known(salt.wrapping_add(13));
        assert_roundtrip_bitwise(&BottomKSampler::new(PpsRanks, k), &recs, shards, split, &seeds);
        assert_roundtrip_bitwise(&BottomKSampler::new(ExpRanks, k), &recs, shards, split, &seeds);
    }

    #[test]
    fn varopt_roundtrip_replays_rng_state(salt in 0u64..1_000, n in 1usize..300, shards in 1usize..5, split_frac in 0.0f64..1.0, k in 1usize..48) {
        // VarOpt's post-snapshot behavior depends on the restored RNG
        // position; bit-identical continuation is the strongest check that
        // the replayed generator state is exact.
        let recs = records(n, salt);
        let split = ((n as f64) * split_frac) as usize;
        let seeds = SeedAssignment::independent_known(salt.wrapping_add(23));
        assert_roundtrip_bitwise(&VarOptScheme::new(k), &recs, shards, split, &seeds);
    }

    #[test]
    fn instance_sample_and_seed_assignment_roundtrip(salt in 0u64..10_000, n in 0usize..200, tau in 0.5f64..50.0) {
        let recs = records(n, salt);
        let seeds = SeedAssignment::independent_known(salt);
        let mut sketch = PpsPoissonSampler::new(tau).sketch(&seeds, 3);
        for &(k, v) in &recs {
            sketch.ingest(k, v);
        }
        let sample = sketch.finalize();
        let bytes = snapshot_to_vec(&sample).unwrap();
        let back: InstanceSample = snapshot_from_slice(&bytes).unwrap();
        prop_assert_eq!(&back, &sample);
        prop_assert_eq!(snapshot_to_vec(&back).unwrap(), bytes);

        let seed_bytes = snapshot_to_vec(&seeds).unwrap();
        let seeds_back: SeedAssignment = snapshot_from_slice(&seed_bytes).unwrap();
        for key in 0..50u64 {
            prop_assert_eq!(
                seeds.seed(key, key % 3).to_bits(),
                seeds_back.seed(key, key % 3).to_bits()
            );
        }
        prop_assert_eq!(seeds.coordination(), seeds_back.coordination());
        prop_assert_eq!(seeds.visibility(), seeds_back.visibility());
    }

    #[test]
    fn malformed_sketch_snapshots_never_panic(salt in 0u64..500, n in 1usize..120, tau in 0.5f64..50.0) {
        let recs = records(n, salt);
        let seeds = SeedAssignment::independent_known(salt);
        let mut sketch = PpsPoissonSampler::new(tau).sketch(&seeds, 0);
        for &(k, v) in &recs {
            sketch.ingest(k, v);
        }
        let bytes = snapshot_to_vec(&sketch).unwrap();
        // Every truncation yields a typed error.
        for cut in (0..bytes.len()).step_by(7) {
            let err = snapshot_from_slice::<pie_sampling::PpsPoissonSketch>(&bytes[..cut]).unwrap_err();
            prop_assert!(matches!(
                err,
                StoreError::Truncated { .. } | StoreError::BadMagic { .. }
            ), "cut {}: {}", cut, err);
        }
        // Every single-byte corruption is either detected by the checksum or
        // (if it hit the magic) reported as not-a-snapshot.
        for i in (0..bytes.len()).step_by(5) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x20;
            prop_assert!(snapshot_from_slice::<pie_sampling::PpsPoissonSketch>(&corrupted).is_err(),
                "corruption at byte {} went unnoticed", i);
        }
    }
}

#[test]
fn wrong_version_is_rejected_for_sketch_snapshots() {
    let seeds = SeedAssignment::independent_known(1);
    let sketch = ObliviousPoissonSampler::new(0.5).sketch(&seeds, 0);
    let mut bytes = snapshot_to_vec(&sketch).unwrap();
    bytes[4] = 0xFE; // format version field (little-endian u32 after magic)
    let err = snapshot_from_slice::<pie_sampling::ObliviousPoissonSketch>(&bytes).unwrap_err();
    assert!(
        matches!(err, StoreError::UnsupportedVersion { .. }),
        "{err}"
    );
}

#[test]
fn cross_family_snapshots_are_rejected_with_typed_tags() {
    let seeds = SeedAssignment::independent_known(2);
    let mut pps = PpsPoissonSampler::new(4.0).sketch(&seeds, 0);
    for (k, v) in records(50, 3) {
        pps.ingest(k, v);
    }
    let bytes = snapshot_to_vec(&pps).unwrap();
    let err = snapshot_from_slice::<pie_sampling::ObliviousPoissonSketch>(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::InvalidTag {
                what: "ObliviousPoissonSketch",
                ..
            }
        ),
        "{err}"
    );
    let err = snapshot_from_slice::<pie_sampling::BottomKSketch<PpsRanks>>(&bytes).unwrap_err();
    assert!(matches!(err, StoreError::InvalidTag { .. }), "{err}");
    let err = snapshot_from_slice::<pie_sampling::VarOptSketch>(&bytes).unwrap_err();
    assert!(matches!(err, StoreError::InvalidTag { .. }), "{err}");
}

#[test]
fn bottomk_rejects_rank_family_mismatch() {
    let seeds = SeedAssignment::independent_known(4);
    let mut sketch = BottomKSampler::new(PpsRanks, 8).sketch(&seeds, 0);
    for (k, v) in records(100, 5) {
        sketch.ingest(k, v);
    }
    let bytes = snapshot_to_vec(&sketch).unwrap();
    // Same BOTTOM_K family tag, wrong rank family type parameter.
    let err = snapshot_from_slice::<pie_sampling::BottomKSketch<ExpRanks>>(&bytes).unwrap_err();
    assert!(matches!(err, StoreError::InvalidValue { .. }), "{err}");
}

#[test]
fn poisson_decoders_reject_unsorted_or_nonpositive_entries() {
    use pie_store::SnapshotWriter;
    // Hand-build a PpsPoissonSketch payload (field order: family tag,
    // tau_star, seeds, instance index, entries, ingested) with out-of-order
    // entries; the frame checksum is valid, so only the decoder's invariant
    // check can reject it.
    let seeds = SeedAssignment::independent_known(3);
    let build = |entries: &[(u64, f64)]| {
        let mut w = SnapshotWriter::new(Vec::new());
        w.write(&2u32).unwrap(); // sketch_tag::PPS_POISSON
        w.write(&4.0f64).unwrap();
        w.write(&seeds).unwrap();
        w.write(&0u64).unwrap();
        w.write(&entries.to_vec()).unwrap();
        w.write(&(entries.len() as u64)).unwrap();
        w.finish().unwrap()
    };
    let sorted = build(&[(1, 2.0), (5, 1.0)]);
    assert!(snapshot_from_slice::<pie_sampling::PpsPoissonSketch>(&sorted).is_ok());
    for bad in [
        &[(5, 1.0), (1, 2.0)][..],      // out of order
        &[(1, 2.0), (1, 3.0)][..],      // duplicate key
        &[(1, 0.0), (5, 1.0)][..],      // non-positive weight
        &[(1, f64::NAN), (5, 1.0)][..], // non-finite weight
    ] {
        let err = snapshot_from_slice::<pie_sampling::PpsPoissonSketch>(&build(bad)).unwrap_err();
        assert!(
            matches!(err, StoreError::InvalidValue { .. }),
            "{bad:?}: {err}"
        );
    }
}

#[test]
fn empty_sketch_snapshots_roundtrip() {
    let seeds = SeedAssignment::independent_known(9);
    let recs: Vec<(u64, f64)> = Vec::new();
    assert_roundtrip_bitwise(&ObliviousPoissonSampler::new(0.4), &recs, 1, 0, &seeds);
    assert_roundtrip_bitwise(&PpsPoissonSampler::new(2.0), &recs, 1, 0, &seeds);
    assert_roundtrip_bitwise(&BottomKSampler::new(PpsRanks, 4), &recs, 1, 0, &seeds);
    assert_roundtrip_bitwise(&VarOptScheme::new(4), &recs, 1, 0, &seeds);
}
