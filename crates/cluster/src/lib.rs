//! Distributed catalog serving for the PODS 2011 reproduction: a
//! consistent-hash router over N `pie-serve` nodes with replicated
//! failover and bit-identical answers.
//!
//! # What this crate adds
//!
//! A single `pie-serve` node already serves estimates over TCP with a
//! multiplexed event loop.  This crate scales that out **without changing
//! a single answer**:
//!
//! - [`HashRing`] maps every sketch name to `R` distinct owner nodes (64
//!   virtual points per node; placement is a pure function of the node
//!   *names*, so any router anywhere agrees, and removing a node remaps
//!   only the keys it owned).
//! - [`Router`] fans writes to **all** owners (strictly — a short write
//!   is an error, not a silent degradation) and serves reads from the
//!   first reachable owner, failing over on timeouts and transport faults
//!   but never on a healthy node's typed answer.
//! - [`LocalCluster`] spins up N real in-process nodes for tests and
//!   benchmarks.
//!
//! # Why failover cannot change an answer
//!
//! Everything in the stack below is deterministic: a sketch build
//! finalizes to the same samples on every node given the same batches,
//! snapshot bytes are identical across replicas (one encoding is shipped
//! everywhere), and the estimation pipeline is a pure function of the
//! finalized sketch and the query.  So two replicas are not "eventually
//! consistent copies" — they are bit-identical, and a query answered by
//! the third replica after two node deaths returns the same
//! `PipelineReport`, bit for bit, as the in-process pipeline would.  The
//! integration tests assert exactly this at every `N × R` combination,
//! before and after killing nodes.
//!
//! # Quickstart
//!
//! ```
//! use partial_info_estimators::datagen::{dataset_records, paper_example};
//! use partial_info_estimators::Scheme;
//! use pie_cluster::LocalCluster;
//! use pie_serve::{IngestRecord, SketchConfig};
//!
//! // Three real serving nodes on loopback, replication factor two.
//! let mut cluster = LocalCluster::launch(3).unwrap();
//! let mut router = cluster.router(2).unwrap();
//!
//! // Ingest through the router: the batch lands on both owner nodes,
//! // which run the same deterministic build.
//! let dataset = paper_example().take_instances(2);
//! let config = SketchConfig {
//!     scheme: Scheme::oblivious(0.5),
//!     shards: 2,
//!     trials: 8,
//!     base_salt: 3,
//! };
//! let records: Vec<IngestRecord> = dataset_records(&dataset)
//!     .map(|r| IngestRecord {
//!         instance: r.instance,
//!         key: r.key,
//!         value: r.value,
//!     })
//!     .collect();
//! router.ingest_batch("demo", config, records, true).unwrap();
//!
//! // Serve an estimate; then kill the sketch's primary owner and serve
//! // it again — the surviving replica answers bit-identically.
//! let before = router
//!     .estimate("demo", "max_oblivious", "max_dominance")
//!     .unwrap();
//! let owner = router.owners("demo")[0].to_string();
//! let index: usize = owner.strip_prefix("node-").unwrap().parse().unwrap();
//! cluster.kill(index);
//! let after = router
//!     .estimate("demo", "max_oblivious", "max_dominance")
//!     .unwrap();
//! assert_eq!(before, after);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod local;
pub mod ring;
pub mod router;

pub use error::ClusterError;
pub use local::LocalCluster;
pub use ring::{HashRing, VNODES};
pub use router::{ClusterConfig, NodeSpec, Router};

// The observability vocabulary of `Router::fleet_metrics` /
// `Router::query_trace`, re-exported so cluster consumers read fleet
// snapshots and stamp trace contexts without naming `pie-obs` directly.
pub use pie_obs::{MetricsSnapshot, SpanRecord, TraceContext};
