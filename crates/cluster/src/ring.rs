//! The consistent-hash ring that decides which nodes own which sketches.
//!
//! Sketch names and node identities both hash onto the same `u64` circle
//! (via `pie-sampling`'s deterministic [`Hasher64`], the workspace's one
//! source of reproducible randomness); a sketch is owned by the first
//! `R` **distinct** nodes found walking clockwise from its point.  Each
//! node contributes [`VNODES`] virtual points so load spreads evenly and
//! so removing a node only remaps the keys it owned — every other key
//! keeps its owner list, which is exactly the property that makes
//! failover cheap: no global reshuffle, the ring is a pure function of
//! the node-name set.
//!
//! Everything here is deterministic: routers on different machines (or a
//! router restarted years later) built from the same node names agree on
//! every placement, bit for bit.

use pie_sampling::hash::Hasher64;

use crate::error::ClusterError;

/// Virtual points each node contributes to the ring.  More vnodes smooth
/// the load split (the expected imbalance shrinks like `1/sqrt(VNODES)`)
/// at a small cost in ring size; 64 keeps the worst node within a few
/// tens of percent of the mean, plenty for estimate serving where every
/// query is cheap.
pub const VNODES: u64 = 64;

/// Fixed salt for ring placement, shared by every router build — placement
/// must be a pure function of the name sets, never of any runtime state.
const RING_SALT: u64 = 0x7069_652d_7269_6e67; // "pie-ring"

/// FNV-1a over a byte string: the stable name → `u64` step (the same
/// construction the store layer uses for checksums and fingerprints).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring over a fixed set of named nodes.
///
/// ```
/// use pie_cluster::HashRing;
///
/// let ring = HashRing::new(&["alpha", "beta", "gamma"]).unwrap();
/// let owners = ring.owners("traffic-2026-08", 2);
/// assert_eq!(owners.len(), 2);
/// assert_ne!(owners[0], owners[1], "replicas live on distinct nodes");
/// // Placement is deterministic: any ring over the same names agrees.
/// let again = HashRing::new(&["alpha", "beta", "gamma"]).unwrap();
/// assert_eq!(again.owners("traffic-2026-08", 2), owners);
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node index)`, sorted by point (ties broken by node index
    /// so construction order never matters).
    points: Vec<(u64, usize)>,
    nodes: Vec<String>,
    hasher: Hasher64,
}

impl HashRing {
    /// Builds the ring over `nodes` (order-insensitive: placement depends
    /// only on the name *set*).
    ///
    /// # Errors
    /// [`ClusterError::Config`] on an empty list, an empty name, or a
    /// duplicate name.
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> Result<Self, ClusterError> {
        if nodes.is_empty() {
            return Err(ClusterError::Config {
                detail: "a ring needs at least one node".to_string(),
            });
        }
        let mut names: Vec<String> = nodes.iter().map(|n| n.as_ref().to_string()).collect();
        // Sort so the node *set* alone fixes every index and point —
        // routers built from differently-ordered configs still agree.
        names.sort();
        if names.iter().any(String::is_empty) {
            return Err(ClusterError::Config {
                detail: "node names must be non-empty".to_string(),
            });
        }
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(ClusterError::Config {
                detail: "node names must be unique".to_string(),
            });
        }
        let hasher = Hasher64::new(RING_SALT);
        let mut points = Vec::with_capacity(names.len() * VNODES as usize);
        for (index, name) in names.iter().enumerate() {
            let identity = fnv64(name.as_bytes());
            for vnode in 0..VNODES {
                points.push((hasher.hash_pair(identity, vnode), index));
            }
        }
        points.sort_unstable();
        Ok(Self {
            points,
            nodes: names,
            hasher,
        })
    }

    /// The node names, sorted.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of nodes on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes (never true: construction refuses).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The point a key hashes to on the circle.
    fn point_of(&self, key: &str) -> u64 {
        self.hasher.hash_u64(fnv64(key.as_bytes()))
    }

    /// The indices of the first `replicas` distinct nodes clockwise from
    /// `key`'s point (capped at the node count; at least one).
    #[must_use]
    pub fn owner_indices(&self, key: &str, replicas: usize) -> Vec<usize> {
        let wanted = replicas.clamp(1, self.nodes.len());
        let point = self.point_of(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let mut owners = Vec::with_capacity(wanted);
        let mut seen = vec![false; self.nodes.len()];
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            if !seen[node] {
                seen[node] = true;
                owners.push(node);
                if owners.len() == wanted {
                    break;
                }
            }
        }
        owners
    }

    /// The names of the first `replicas` distinct owner nodes, in ring
    /// (failover-preference) order: the first entry is the primary, each
    /// subsequent entry the next replica a router should try.
    #[must_use]
    pub fn owners(&self, key: &str, replicas: usize) -> Vec<&str> {
        self.owner_indices(key, replicas)
            .into_iter()
            .map(|i| self.nodes[i].as_str())
            .collect()
    }

    /// The primary owner of `key`.
    #[must_use]
    pub fn primary(&self, key: &str) -> &str {
        self.nodes[self.owner_indices(key, 1)[0]].as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("sketch-{i}")).collect()
    }

    #[test]
    fn construction_validates_names() {
        assert!(HashRing::new::<&str>(&[]).is_err());
        assert!(HashRing::new(&["a", ""]).is_err());
        assert!(HashRing::new(&["a", "b", "a"]).is_err());
        assert!(HashRing::new(&["a", "b"]).is_ok());
    }

    #[test]
    fn placement_is_order_insensitive_and_deterministic() {
        let forward = HashRing::new(&["alpha", "beta", "gamma"]).unwrap();
        let backward = HashRing::new(&["gamma", "alpha", "beta"]).unwrap();
        for key in keys(200) {
            assert_eq!(forward.owners(&key, 2), backward.owners(&key, 2), "{key}");
        }
    }

    #[test]
    fn owners_are_distinct_and_capped_at_node_count() {
        let ring = HashRing::new(&["a", "b", "c"]).unwrap();
        for key in keys(100) {
            let owners = ring.owners(&key, 2);
            assert_eq!(owners.len(), 2);
            assert_ne!(owners[0], owners[1]);
            // Asking for more replicas than nodes yields every node once.
            let mut all = ring.owners(&key, 10);
            assert_eq!(all.len(), 3);
            all.sort_unstable();
            assert_eq!(all, ["a", "b", "c"]);
            // The primary is owners()[0].
            assert_eq!(ring.primary(&key), ring.owners(&key, 1)[0]);
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let ring = HashRing::new(&["n1", "n2", "n3", "n4", "n5"]).unwrap();
        let mut counts = std::collections::HashMap::new();
        let total = 5_000usize;
        for key in keys(total) {
            *counts
                .entry(ring.primary(&key).to_string())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 5, "every node owns something");
        let expected = total / 5;
        for (node, count) in counts {
            assert!(
                count > expected / 2 && count < expected * 2,
                "{node} owns {count} of {total}; expected near {expected}"
            );
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys() {
        let full = HashRing::new(&["a", "b", "c", "d"]).unwrap();
        let without_d = HashRing::new(&["a", "b", "c"]).unwrap();
        for key in keys(1_000) {
            let before = full.primary(&key);
            if before != "d" {
                assert_eq!(
                    without_d.primary(&key),
                    before,
                    "{key} moved although its owner survived"
                );
            }
        }
    }
}
