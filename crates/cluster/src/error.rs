//! Cluster-level failures: configuration mistakes, exhausted replica
//! sets, and node-scoped transport faults.
//!
//! The router deliberately keeps two kinds of failure apart.  A **typed
//! server answer** (unknown sketch, quota shed, estimator mismatch, …) is
//! authoritative — the node is healthy and said *no*, so it surfaces
//! unchanged as [`ClusterError::Serve`] and never triggers failover.
//! A **delivery failure** (timeout, connection refused, mid-stream
//! hang-up) says nothing about the data, only about the node — the router
//! moves on to the next replica and only reports [`ClusterError::NoReplica`]
//! when every owner of a key is unreachable.

use std::error::Error;
use std::fmt;

use pie_serve::ServeError;

/// Everything a [`Router`](crate::Router) call can fail with.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster description itself is unusable (empty node list,
    /// duplicate names, zero replication, …).
    Config {
        /// What was wrong with it.
        detail: String,
    },
    /// A specific node could not be reached or answered with a transport
    /// fault.  Returned by strict fan-out operations (replication writes)
    /// that must land on *every* owner.
    NodeUnavailable {
        /// The node that failed.
        node: String,
        /// The underlying delivery failure.
        error: ServeError,
    },
    /// Every replica that owns the key was unreachable.  Carries the last
    /// per-node failure for diagnosis.
    NoReplica {
        /// The key whose owner set was exhausted.
        sketch: String,
        /// The node tried last.
        last_node: String,
        /// The failure that node produced.
        last_error: ServeError,
    },
    /// A healthy node's typed refusal, passed through verbatim.
    Serve(ServeError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { detail } => write!(f, "invalid cluster configuration: {detail}"),
            Self::NodeUnavailable { node, error } => {
                write!(f, "node '{node}' unavailable: {error}")
            }
            Self::NoReplica {
                sketch,
                last_node,
                last_error,
            } => write!(
                f,
                "no reachable replica for '{sketch}' (last tried '{last_node}': {last_error})"
            ),
            Self::Serve(error) => write!(f, "{error}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config { .. } => None,
            Self::NodeUnavailable { error, .. }
            | Self::NoReplica {
                last_error: error, ..
            } => Some(error),
            Self::Serve(error) => Some(error),
        }
    }
}

impl From<ServeError> for ClusterError {
    fn from(error: ServeError) -> Self {
        Self::Serve(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_node() {
        let err = ClusterError::NodeUnavailable {
            node: "node-2".into(),
            error: ServeError::Timeout {
                during: "reading the response".into(),
            },
        };
        assert!(err.to_string().contains("node-2"));
        assert!(err.to_string().contains("timed out"));

        let err = ClusterError::NoReplica {
            sketch: "traffic".into(),
            last_node: "node-0".into(),
            last_error: ServeError::Transport {
                detail: "connection refused".into(),
            },
        };
        assert!(err.to_string().contains("traffic"));
        assert!(err.to_string().contains("node-0"));
    }

    #[test]
    fn serve_errors_pass_through() {
        let inner = ServeError::UnknownSketch {
            name: "ghost".into(),
        };
        let wrapped = ClusterError::from(inner);
        assert!(matches!(wrapped, ClusterError::Serve(_)));
    }
}
