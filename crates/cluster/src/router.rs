//! The cluster router: one client-side coordinator that presents N
//! `pie-serve` nodes as a single catalog.
//!
//! Placement comes from the [`HashRing`]: each sketch name owns a point
//! on the ring, and its entry lives on the first `replication` distinct
//! nodes clockwise from that point.  Writes ([`Router::publish_entry`],
//! [`Router::ingest_batch`]) land on **every** owner — strictly, so a
//! partially replicated write is reported rather than silently degraded.
//! Reads ([`Router::estimate`], [`Router::batch_estimate`]) try owners in
//! ring order and fail over to the next replica on *delivery* failures
//! only (timeout, refused connection, mid-stream hang-up); a typed server
//! answer is authoritative and never retried elsewhere.
//!
//! Because sketch builds are deterministic (the same batches finalize to
//! the same samples regardless of which node runs the build) and the
//! estimation pipeline is deterministic given a finalized sketch, every
//! replica answers every query **bit-identically** — failover changes
//! which socket answers, never the answer.  The distributed-serving tests
//! assert this against the in-process pipeline at every `N × R`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use partial_info_estimators::{CatalogEntry, PipelineReport};
use pie_engine::EngineStatsReport;
use pie_obs::{MetricsRegistry, MetricsSnapshot, SpanRecord, TraceContext, TraceRing};
use pie_serve::{
    BatchQuery, ClientConfig, IngestAck, IngestRecord, ServeClient, ServeError, SketchConfig,
    SketchInfo,
};

use crate::error::ClusterError;
use crate::ring::HashRing;

/// How long a node that just produced a delivery failure is skipped
/// before the router dials it again.  Short on purpose: a node restarting
/// behind the same address should come back quickly, and reads always
/// ignore cooldowns when every owner is cooling (better to retry a
/// suspect node than to refuse the query).
const NODE_COOLDOWN: Duration = Duration::from_millis(500);

/// One serving node: a stable name (its ring identity) and the address
/// its `pie-serve` listener answers on.  The *name* decides placement —
/// a node can restart on a new port without remapping any keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Stable ring identity.
    pub name: String,
    /// Current listener address.
    pub addr: SocketAddr,
}

impl NodeSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, addr: SocketAddr) -> Self {
        Self {
            name: name.into(),
            addr,
        }
    }
}

/// A cluster description: the node set, the replication factor, and the
/// client profile used for every node connection.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The serving nodes (order irrelevant; names must be unique).
    pub nodes: Vec<NodeSpec>,
    /// Distinct nodes each sketch is replicated to (clamped to the node
    /// count; must be at least 1).
    pub replication: usize,
    /// Socket profile for node connections.  The default caps every
    /// operation at two seconds so a hung node stalls one failover step,
    /// not the whole router.
    pub client: ClientConfig,
}

impl ClusterConfig {
    /// A config over `nodes` with replication factor `replication` and
    /// the default two-second failover-detection client profile.
    #[must_use]
    pub fn new(nodes: Vec<NodeSpec>, replication: usize) -> Self {
        Self {
            nodes,
            replication,
            client: ClientConfig::with_deadline(Duration::from_secs(2), 1),
        }
    }
}

/// Whether a failure says "this node is unreachable" (fail over) rather
/// than "this node answered no" (authoritative).
fn delivery_failure(error: &ServeError) -> bool {
    matches!(
        error,
        ServeError::Transport { .. } | ServeError::Timeout { .. }
    )
}

/// One node's connection slot: the spec, a lazily dialed client, and the
/// cooldown gate that keeps the router from hammering a dead address.
struct Node {
    spec: NodeSpec,
    client: Option<ServeClient>,
    down_until: Option<Instant>,
}

impl Node {
    fn cooling(&self, now: Instant) -> bool {
        self.down_until.is_some_and(|until| until > now)
    }
}

/// The consistent-hash cluster router.
///
/// Owns one lazily connected [`ServeClient`] per node plus the
/// [`HashRing`] that maps sketch names to owner nodes.  All methods take
/// `&mut self`: the router is a client-side object, one per consumer
/// thread (clone the [`ClusterConfig`] to build more).
pub struct Router {
    ring: HashRing,
    /// Indexed identically to `ring.nodes()` (both sorted by name).
    nodes: Vec<Node>,
    replication: usize,
    client_config: ClientConfig,
    /// Tenant replayed onto every (re)dialed node connection.
    tenant: Option<String>,
    /// Router-local counters: failovers, cooldowns, scatter fan-outs.
    registry: MetricsRegistry,
    /// Router-local spans for traced routed requests (node = `"router"`).
    traces: TraceRing,
    /// The caller's trace context, stamped onto node hops.
    trace: Option<TraceContext>,
    /// The context actually stamped onto the next node hop (the caller's
    /// context, or a router span interposed for a routed estimate).
    hop_trace: Option<TraceContext>,
    /// Next router-local span id.
    next_span: u64,
    /// The router's clock zero for span `start_nanos`.
    started: Instant,
}

impl Router {
    /// Builds a router over `config`.
    ///
    /// # Errors
    /// [`ClusterError::Config`] on an empty node set, duplicate or empty
    /// node names, or `replication == 0`.
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        if config.replication == 0 {
            return Err(ClusterError::Config {
                detail: "replication factor must be at least 1".to_string(),
            });
        }
        let names: Vec<&str> = config.nodes.iter().map(|n| n.name.as_str()).collect();
        let ring = HashRing::new(&names)?;
        // The ring sorted the names; arrange the node slots to match so
        // ring indices address `self.nodes` directly.
        let mut specs = config.nodes;
        specs.sort_by(|a, b| a.name.cmp(&b.name));
        let nodes = specs
            .into_iter()
            .map(|spec| Node {
                spec,
                client: None,
                down_until: None,
            })
            .collect();
        Ok(Self {
            ring,
            nodes,
            replication: config.replication,
            client_config: config.client,
            tenant: None,
            registry: MetricsRegistry::new(),
            traces: TraceRing::new(1024),
            trace: None,
            hop_trace: None,
            next_span: 1,
            started: Instant::now(),
        })
    }

    /// The ring deciding placement.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The effective replication factor (requested, capped at N).
    #[must_use]
    pub fn replication(&self) -> usize {
        self.replication.min(self.nodes.len())
    }

    /// The owner node names for `sketch`, primary first.
    #[must_use]
    pub fn owners(&self, sketch: &str) -> Vec<&str> {
        self.ring.owners(sketch, self.replication)
    }

    /// Stamps `trace` onto every subsequent routed request.  The router
    /// interposes its own span on traced estimates — node spans parent
    /// under the router's span, the router's span under the caller's — so
    /// a [`query_trace`](Self::query_trace) for the id shows both layers.
    pub fn set_trace(&mut self, trace: Option<TraceContext>) {
        self.trace = trace;
        self.hop_trace = trace;
    }

    /// The router's own counters (failovers, cooldowns): the slice of the
    /// fleet picture only the router can see.
    #[must_use]
    pub fn local_metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Router-local spans recorded for `trace_id` (node = `"router"`).
    #[must_use]
    pub fn local_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.traces.query(trace_id)
    }

    /// Begins the router's own span for one traced routed request:
    /// allocates a span id, points node hops at it (so node spans parent
    /// under the router's), and returns what
    /// [`finish_route_span`](Self::finish_route_span) needs.
    fn begin_route_span(&mut self) -> Option<(TraceContext, u64, Instant)> {
        let ctx = self.trace?;
        let span_id = self.next_span;
        self.next_span += 1;
        self.hop_trace = Some(TraceContext::new(ctx.trace_id, span_id));
        Some((ctx, span_id, Instant::now()))
    }

    /// Records the router's span begun by
    /// [`begin_route_span`](Self::begin_route_span) and restores the
    /// pass-through hop context.
    fn finish_route_span(&mut self, span: Option<(TraceContext, u64, Instant)>, stage: &str) {
        if let Some((ctx, span_id, start)) = span {
            let duration = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let start_nanos =
                u64::try_from(start.duration_since(self.started).as_nanos()).unwrap_or(u64::MAX);
            self.traces.record(SpanRecord {
                trace_id: ctx.trace_id,
                span_id,
                parent_span_id: ctx.span_id,
                node: "router".to_string(),
                stage: stage.to_string(),
                start_nanos,
                duration_nanos: duration,
            });
        }
        self.hop_trace = self.trace;
    }

    /// Names the tenant all node connections bill to.  Applied to every
    /// currently open connection and replayed onto later (re)dials, so
    /// failover keeps billing the same tenant.
    ///
    /// # Errors
    /// [`ClusterError::NodeUnavailable`] naming the first node that could
    /// not be told (identity must be uniform across the fleet).
    pub fn identify(&mut self, tenant: impl Into<String>) -> Result<(), ClusterError> {
        let tenant = tenant.into();
        self.tenant = Some(tenant.clone());
        for index in 0..self.nodes.len() {
            if self.nodes[index].client.is_some() {
                let node_name = self.nodes[index].spec.name.clone();
                // Already connected: re-identify in place.
                if let Err(error) = self.client(index)?.identify(tenant.clone()) {
                    self.note_failure(index, &error);
                    return Err(ClusterError::NodeUnavailable {
                        node: node_name,
                        error,
                    });
                }
            }
        }
        Ok(())
    }

    /// Publishes a finalized catalog entry to **all** its owner nodes,
    /// encoding once and shipping the same bytes everywhere (replicas are
    /// byte-identical by construction).  Strict: a single unreachable
    /// owner fails the publish — replication written short is data loss
    /// waiting for the next node death, so it is reported, not tolerated.
    ///
    /// # Errors
    /// [`ClusterError::NodeUnavailable`] naming the first owner that did
    /// not take the entry; typed server refusals pass through.
    pub fn publish_entry(
        &mut self,
        name: &str,
        entry: &CatalogEntry,
    ) -> Result<SketchInfo, ClusterError> {
        let snapshot = pie_store::encode_to_vec(entry).map_err(|e| {
            ClusterError::Serve(ServeError::Snapshot {
                detail: e.to_string(),
            })
        })?;
        let owners = self.ring.owner_indices(name, self.replication);
        let mut info = None;
        for index in owners {
            let node_name = self.nodes[index].spec.name.clone();
            match self
                .client(index)?
                .put_snapshot_bytes(name, snapshot.clone())
            {
                Ok(accepted) => info = Some(accepted),
                Err(error) => {
                    self.note_failure(index, &error);
                    return Err(if delivery_failure(&error) {
                        ClusterError::NodeUnavailable {
                            node: node_name,
                            error,
                        }
                    } else {
                        ClusterError::Serve(error)
                    });
                }
            }
        }
        Ok(info.expect("owner set is never empty"))
    }

    /// Streams one ingest batch to **all** owner nodes of `sketch`.  Each
    /// replica runs the same deterministic build over the same batches,
    /// so finalized replicas agree bit-for-bit (same fingerprint) without
    /// any cross-node coordination.  Strict like
    /// [`publish_entry`](Self::publish_entry).
    ///
    /// # Errors
    /// [`ClusterError::NodeUnavailable`] naming the first owner that did
    /// not take the batch; typed refusals (config mismatch, finalized
    /// sketch, quota shed) pass through.
    pub fn ingest_batch(
        &mut self,
        sketch: &str,
        config: SketchConfig,
        records: Vec<IngestRecord>,
        last: bool,
    ) -> Result<IngestAck, ClusterError> {
        let owners = self.ring.owner_indices(sketch, self.replication);
        let mut ack = None;
        for index in owners {
            let node_name = self.nodes[index].spec.name.clone();
            match self
                .client(index)?
                .ingest_batch(sketch, config, records.clone(), last)
            {
                Ok(accepted) => ack = Some(accepted),
                Err(error) => {
                    self.note_failure(index, &error);
                    return Err(if delivery_failure(&error) {
                        ClusterError::NodeUnavailable {
                            node: node_name,
                            error,
                        }
                    } else {
                        ClusterError::Serve(error)
                    });
                }
            }
        }
        Ok(ack.expect("owner set is never empty"))
    }

    /// Runs one estimation query against the sketch's owner set, failing
    /// over from the primary to successive replicas on delivery failures.
    /// Whichever replica answers, the report is bit-identical — replicas
    /// hold byte-identical state and the pipeline is deterministic.
    ///
    /// # Errors
    /// A typed server answer passes through unchanged (authoritative);
    /// [`ClusterError::NoReplica`] when every owner was unreachable.
    pub fn estimate(
        &mut self,
        sketch: &str,
        estimator: &str,
        statistic: &str,
    ) -> Result<PipelineReport, ClusterError> {
        let span = self.begin_route_span();
        let result = self.over_owners(sketch, |client| {
            client.estimate(sketch, estimator, statistic)
        });
        self.finish_route_span(span, "route_estimate");
        result
    }

    /// Runs a batch of `(estimator, statistic)` queries against one
    /// sketch with the same failover rule as [`estimate`](Self::estimate).
    ///
    /// # Errors
    /// As [`estimate`](Self::estimate).
    pub fn batch_estimate(
        &mut self,
        sketch: &str,
        queries: Vec<BatchQuery>,
    ) -> Result<Vec<PipelineReport>, ClusterError> {
        let span = self.begin_route_span();
        let result = self.over_owners(sketch, |client| {
            client.batch_estimate(sketch, queries.clone())
        });
        self.finish_route_span(span, "route_batch_estimate");
        result
    }

    /// Lists the union of every reachable node's catalog, deduplicated by
    /// sketch name (replicas of one sketch are identical) and sorted.
    ///
    /// # Errors
    /// [`ClusterError::NoReplica`] only when **no** node was reachable;
    /// a partial fleet still answers with what it can see.
    pub fn list_catalog(&mut self) -> Result<Vec<SketchInfo>, ClusterError> {
        let mut entries: Vec<SketchInfo> = Vec::new();
        let mut reached = false;
        let mut last: Option<(String, ServeError)> = None;
        for index in 0..self.nodes.len() {
            match self.try_node(index, |client| client.list_catalog()) {
                Ok(list) => {
                    reached = true;
                    for info in list {
                        if !entries.iter().any(|e| e.name == info.name) {
                            entries.push(info);
                        }
                    }
                }
                Err(ClusterError::Serve(error)) => return Err(ClusterError::Serve(error)),
                Err(ClusterError::NodeUnavailable { node, error }) => {
                    last = Some((node, error));
                }
                Err(other) => return Err(other),
            }
        }
        if !reached {
            let (last_node, last_error) = last.expect("at least one node was tried");
            return Err(ClusterError::NoReplica {
                sketch: "<catalog scatter>".to_string(),
                last_node,
                last_error,
            });
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(entries)
    }

    /// Aggregates every reachable node's engine stats into one fleet
    /// report (counters sum, tenant rows merge — see
    /// [`EngineStatsReport::absorb`]).
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn stats(&mut self) -> Result<EngineStatsReport, ClusterError> {
        let mut fleet = EngineStatsReport::default();
        let mut reached = false;
        let mut last: Option<(String, ServeError)> = None;
        for index in 0..self.nodes.len() {
            match self.try_node(index, |client| client.stats()) {
                Ok(stats) => {
                    reached = true;
                    fleet.absorb(&stats);
                }
                Err(ClusterError::Serve(error)) => return Err(ClusterError::Serve(error)),
                Err(ClusterError::NodeUnavailable { node, error }) => {
                    last = Some((node, error));
                }
                Err(other) => return Err(other),
            }
        }
        if !reached {
            let (last_node, last_error) = last.expect("at least one node was tried");
            return Err(ClusterError::NoReplica {
                sketch: "<stats scatter>".to_string(),
                last_node,
                last_error,
            });
        }
        Ok(fleet)
    }

    /// Aggregates every reachable node's metrics snapshot into one fleet
    /// snapshot, then folds in the router's own counters (failovers,
    /// cooldowns).  The merge is bit-deterministic — counters sum,
    /// histogram buckets sum — so the aggregate is independent of the
    /// order nodes answered in (see [`MetricsSnapshot::absorb`]).
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog): fails only when **no**
    /// node was reachable.
    pub fn fleet_metrics(&mut self) -> Result<MetricsSnapshot, ClusterError> {
        let mut fleet = MetricsSnapshot::default();
        let mut reached = false;
        let mut last: Option<(String, ServeError)> = None;
        for index in 0..self.nodes.len() {
            match self.try_node(index, |client| client.metrics()) {
                Ok(snapshot) => {
                    reached = true;
                    fleet.absorb(&snapshot);
                }
                Err(ClusterError::Serve(error)) => return Err(ClusterError::Serve(error)),
                Err(ClusterError::NodeUnavailable { node, error }) => {
                    last = Some((node, error));
                }
                Err(other) => return Err(other),
            }
        }
        if !reached {
            let (last_node, last_error) = last.expect("at least one node was tried");
            return Err(ClusterError::NoReplica {
                sketch: "<metrics scatter>".to_string(),
                last_node,
                last_error,
            });
        }
        fleet.absorb(&self.registry.snapshot());
        Ok(fleet)
    }

    /// Collects every span recorded for `trace_id` across the fleet —
    /// the nodes' rings via `QueryTrace` requests plus the router's own
    /// ring — sorted by `(node, span_id)` so the result is independent of
    /// scatter order.  Unreachable nodes contribute nothing (their spans
    /// are unavailable, not an error); fails only when **no** node was
    /// reachable.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn query_trace(&mut self, trace_id: u64) -> Result<Vec<SpanRecord>, ClusterError> {
        let mut spans = self.traces.query(trace_id);
        let mut reached = false;
        let mut last: Option<(String, ServeError)> = None;
        for index in 0..self.nodes.len() {
            match self.try_node(index, |client| client.query_trace(trace_id)) {
                Ok(node_spans) => {
                    reached = true;
                    spans.extend(node_spans);
                }
                Err(ClusterError::Serve(error)) => return Err(ClusterError::Serve(error)),
                Err(ClusterError::NodeUnavailable { node, error }) => {
                    last = Some((node, error));
                }
                Err(other) => return Err(other),
            }
        }
        if !reached {
            let (last_node, last_error) = last.expect("at least one node was tried");
            return Err(ClusterError::NoReplica {
                sketch: "<trace scatter>".to_string(),
                last_node,
                last_error,
            });
        }
        spans.sort_by(|a, b| (&a.node, a.span_id).cmp(&(&b.node, b.span_id)));
        Ok(spans)
    }

    /// Pings every node, returning `(name, alive)` pairs in ring (sorted
    /// name) order.  Never fails: unreachable nodes report `false`.
    /// Ignores cooldowns — a health sweep should always measure, and a
    /// successful ping clears the node's cooldown.
    pub fn ping_all(&mut self) -> Vec<(String, bool)> {
        (0..self.nodes.len())
            .map(|index| {
                let name = self.nodes[index].spec.name.clone();
                let alive = match self.client(index) {
                    Ok(client) => match client.ping() {
                        Ok(()) => true,
                        Err(error) => {
                            self.note_failure(index, &error);
                            false
                        }
                    },
                    Err(_) => false,
                };
                if alive {
                    self.nodes[index].down_until = None;
                }
                (name, alive)
            })
            .collect()
    }

    /// Runs `op` against `sketch`'s owners in ring order, skipping nodes
    /// in cooldown on the first pass and retrying them anyway if every
    /// owner is cooling — the replica-failover core.
    fn over_owners<T>(
        &mut self,
        sketch: &str,
        mut op: impl FnMut(&mut ServeClient) -> Result<T, ServeError>,
    ) -> Result<T, ClusterError> {
        let owners = self.ring.owner_indices(sketch, self.replication);
        let now = Instant::now();
        let mut last: Option<(String, ServeError)> = None;
        // Pass 1: owners not in cooldown.  Pass 2: everyone (a cooldown is
        // a hint, never a reason to refuse a query that might succeed).
        for pass in 0..2 {
            for &index in &owners {
                if pass == 0 && self.nodes[index].cooling(now) {
                    continue;
                }
                if pass == 1 && !self.nodes[index].cooling(now) {
                    continue; // already tried in pass 1
                }
                match self.try_node(index, &mut op) {
                    Ok(value) => return Ok(value),
                    Err(ClusterError::Serve(error)) => return Err(ClusterError::Serve(error)),
                    Err(ClusterError::NodeUnavailable { node, error }) => {
                        // The next owner tried (or pass 2) is a failover.
                        self.registry.counter("router_failovers_total").inc();
                        last = Some((node, error));
                    }
                    Err(other) => return Err(other),
                }
            }
        }
        let (last_node, last_error) = last.expect("owner set is never empty");
        Err(ClusterError::NoReplica {
            sketch: sketch.to_string(),
            last_node,
            last_error,
        })
    }

    /// Runs `op` on one node, classifying the failure: delivery failures
    /// become [`ClusterError::NodeUnavailable`] (and start the node's
    /// cooldown), typed answers become [`ClusterError::Serve`].
    fn try_node<T>(
        &mut self,
        index: usize,
        op: impl FnOnce(&mut ServeClient) -> Result<T, ServeError>,
    ) -> Result<T, ClusterError> {
        let node_name = self.nodes[index].spec.name.clone();
        let client = self.client(index)?;
        match op(client) {
            Ok(value) => Ok(value),
            Err(error) => {
                self.note_failure(index, &error);
                if delivery_failure(&error) {
                    Err(ClusterError::NodeUnavailable {
                        node: node_name,
                        error,
                    })
                } else {
                    Err(ClusterError::Serve(error))
                }
            }
        }
    }

    /// The node's client, dialing (and replaying the tenant identity) on
    /// first use or after a failure dropped the previous connection.
    fn client(&mut self, index: usize) -> Result<&mut ServeClient, ClusterError> {
        if self.nodes[index].client.is_none() {
            let addr = self.nodes[index].spec.addr;
            let mut client =
                ServeClient::connect_with_config(addr, self.client_config).map_err(|error| {
                    self.note_connect_failure(index);
                    ClusterError::NodeUnavailable {
                        node: self.nodes[index].spec.name.clone(),
                        error,
                    }
                })?;
            if let Some(tenant) = &self.tenant {
                client.identify(tenant.clone()).map_err(|error| {
                    self.note_connect_failure(index);
                    ClusterError::NodeUnavailable {
                        node: self.nodes[index].spec.name.clone(),
                        error,
                    }
                })?;
            }
            self.nodes[index].client = Some(client);
            self.nodes[index].down_until = None;
        }
        let hop = self.hop_trace;
        let client = self.nodes[index]
            .client
            .as_mut()
            .expect("client just ensured");
        client.set_trace(hop);
        Ok(client)
    }

    /// Records an operation failure on a node: delivery failures drop the
    /// connection (its stream position is unknowable) and start the
    /// cooldown; typed answers leave the healthy connection alone.
    fn note_failure(&mut self, index: usize, error: &ServeError) {
        if delivery_failure(error) {
            self.note_connect_failure(index);
        }
    }

    fn note_connect_failure(&mut self, index: usize) {
        self.registry.counter("router_cooldowns_total").inc();
        self.nodes[index].client = None;
        self.nodes[index].down_until = Some(Instant::now() + NODE_COOLDOWN);
    }
}
