//! An in-process cluster harness: N real [`Server`]s on loopback ports,
//! addressable as ring nodes, individually killable.
//!
//! Every node is a full `pie-serve` server — real sockets, the real
//! multiplexed event loop, real admission control — so tests and
//! benchmarks exercise exactly the production serving path while staying
//! single-process.  [`LocalCluster::kill`] performs a *graceful* shutdown
//! (stop accepting, drain, join); tests that need an abrupt death use a
//! separate OS process and `kill(9)` instead (see the failover
//! integration test).

use std::io;

use pie_serve::{EngineConfig, Server};

use crate::error::ClusterError;
use crate::router::{ClusterConfig, NodeSpec, Router};

/// N loopback `pie-serve` nodes with stable names `node-0 … node-{N-1}`.
///
/// ```no_run
/// use pie_cluster::LocalCluster;
///
/// let mut cluster = LocalCluster::launch(3).unwrap();
/// let mut router = cluster.router(2).unwrap();
/// // … publish, ingest, estimate through the router …
/// cluster.kill(0); // grace-stop one node; reads fail over to replicas
/// ```
pub struct LocalCluster {
    /// `None` once killed; indices are stable so names keep matching.
    servers: Vec<Option<Server>>,
    specs: Vec<NodeSpec>,
}

impl LocalCluster {
    /// Launches `n` nodes with default engine tunables.
    ///
    /// # Errors
    /// Propagates socket/bind failures.
    pub fn launch(n: usize) -> io::Result<Self> {
        Self::launch_with(n, EngineConfig::default())
    }

    /// Launches `n` nodes, each with its own engine built from `config`.
    ///
    /// # Errors
    /// Propagates socket/bind failures.
    pub fn launch_with(n: usize, config: EngineConfig) -> io::Result<Self> {
        let mut servers = Vec::with_capacity(n);
        let mut specs = Vec::with_capacity(n);
        for index in 0..n {
            let server = Server::bind_with("127.0.0.1:0", config.clone())?;
            specs.push(NodeSpec::new(format!("node-{index}"), server.local_addr()));
            servers.push(Some(server));
        }
        Ok(Self { servers, specs })
    }

    /// The node specs (name + address), in launch order.
    #[must_use]
    pub fn specs(&self) -> Vec<NodeSpec> {
        self.specs.clone()
    }

    /// The address of node `index` (valid even after a kill — the port is
    /// simply dead).
    #[must_use]
    pub fn addr(&self, index: usize) -> std::net::SocketAddr {
        self.specs[index].addr
    }

    /// A router over the whole node set with replication factor
    /// `replication`.
    ///
    /// # Errors
    /// [`ClusterError::Config`] for a zero replication factor.
    pub fn router(&self, replication: usize) -> Result<Router, ClusterError> {
        Router::new(ClusterConfig::new(self.specs(), replication))
    }

    /// Gracefully shuts node `index` down (stop accepting, drain in-flight
    /// work, join its threads).  Returns whether the node was alive.
    pub fn kill(&mut self, index: usize) -> bool {
        match self.servers[index].take() {
            Some(server) => {
                server.shutdown();
                true
            }
            None => false,
        }
    }

    /// How many nodes are still running.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.servers.iter().filter(|s| s.is_some()).count()
    }

    /// Direct access to a live node's server (e.g. to inspect its catalog
    /// in tests); `None` once killed.
    #[must_use]
    pub fn server(&self, index: usize) -> Option<&Server> {
        self.servers[index].as_ref()
    }
}
