//! Process-topology failover: three real `pie-serve` node *processes*, a
//! router in the parent, and a `SIGKILL` — not a graceful drain — of the
//! primary owner mid-serving.
//!
//! The in-process harness ([`LocalCluster`](pie_cluster::LocalCluster))
//! kills nodes politely; this test is the hostile version.  Children are
//! re-invocations of this test binary (selected by environment variable,
//! the same pattern as the repo's cross-process shard-merge test), each
//! running a full server until killed from outside.  After the kill the
//! router must fail over to the replica and keep answering **bit-identically**
//! to the in-process pipeline — a dead socket changes which node answers,
//! never the answer.

use std::io::Write;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{dataset_records, generate_two_hours, TrafficConfig};
use partial_info_estimators::{Pipeline, Scheme, Statistic};
use pie_cluster::{ClusterConfig, NodeSpec, Router};
use pie_serve::{IngestRecord, Server, SketchConfig};

const ENV_PORT_FILE: &str = "PIE_CLUSTER_NODE_PORT_FILE";

const SKETCH: &str = "traffic";
const TRIALS: u64 = 8;
const SALT: u64 = 7;

fn scheme() -> Scheme {
    Scheme::pps(150.0)
}

/// Child entry point: a no-op under a normal test run; a serving node
/// when re-invoked with the port-file environment set.  Runs until the
/// parent kills the process — there is no graceful path out.
#[test]
fn cluster_node_child() {
    let Ok(port_file) = std::env::var(ENV_PORT_FILE) else {
        return;
    };
    let server = Server::bind("127.0.0.1:0").expect("child bind");
    // Publish the ephemeral port via a temp file rename (atomic: the
    // parent never observes a half-written file).
    let tmp = format!("{port_file}.tmp");
    let mut f = std::fs::File::create(&tmp).unwrap();
    writeln!(f, "{}", server.local_addr().port()).unwrap();
    f.sync_all().unwrap();
    std::fs::rename(&tmp, &port_file).unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Spawns one node process and waits for it to report its port.
fn spawn_node(exe: &std::path::Path, dir: &std::path::Path, index: usize) -> (Child, NodeSpec) {
    let port_file = dir.join(format!("node-{index}.port"));
    let child = Command::new(exe)
        .arg("cluster_node_child")
        .arg("--exact")
        .env(ENV_PORT_FILE, &port_file)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn node process");
    let deadline = Instant::now() + Duration::from_secs(30);
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        assert!(Instant::now() < deadline, "node {index} never reported");
        std::thread::sleep(Duration::from_millis(20));
    };
    let spec = NodeSpec::new(
        format!("node-{index}"),
        format!("127.0.0.1:{port}").parse().unwrap(),
    );
    (child, spec)
}

#[test]
fn sigkilled_node_fails_over_to_replica_bit_identically() {
    let exe = std::env::current_exe().unwrap();
    let dir = std::env::temp_dir().join(format!("pie-cluster-failover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Three real OS processes, each a full serving node.
    let (mut children, specs): (Vec<Child>, Vec<NodeSpec>) =
        (0..3).map(|i| spawn_node(&exe, &dir, i)).unzip();

    let mut router = Router::new(ClusterConfig::new(specs, 2)).unwrap();

    // Replicated wire ingest: both owners build the sketch independently
    // from the same deterministic batches.
    let dataset = Arc::new(generate_two_hours(&TrafficConfig::small(4)));
    let config = SketchConfig {
        scheme: scheme(),
        shards: 2,
        trials: TRIALS,
        base_salt: SALT,
    };
    let records: Vec<IngestRecord> = dataset_records(&dataset)
        .map(|r| IngestRecord {
            instance: r.instance,
            key: r.key,
            value: r.value,
        })
        .collect();
    router
        .ingest_batch(SKETCH, config, records, true)
        .expect("replicated ingest");

    let want = Pipeline::new()
        .dataset(Arc::clone(&dataset))
        .scheme(scheme())
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(TRIALS)
        .base_salt(SALT)
        .run()
        .unwrap();

    let before = router
        .estimate(SKETCH, "max_weighted", "max_dominance")
        .expect("estimate with all nodes up");
    assert_eq!(before, want, "served != in-process before the kill");

    // SIGKILL the primary owner: no drain, no FIN handshake courtesy —
    // the router discovers the death as a transport fault and fails over.
    let owner = router.owners(SKETCH)[0].to_string();
    let index: usize = owner.strip_prefix("node-").unwrap().parse().unwrap();
    children[index].kill().expect("kill primary owner");
    children[index].wait().expect("reap primary owner");

    let after = router
        .estimate(SKETCH, "max_weighted", "max_dominance")
        .expect("failover estimate");
    assert_eq!(after, want, "replica's answer diverged after the kill");

    // Repeat a few times: cooldown bookkeeping must not wedge serving.
    for round in 0..5 {
        let again = router
            .estimate(SKETCH, "max_weighted", "max_dominance")
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(again, want, "round {round} diverged");
    }

    // The health sweep sees exactly one dead node.
    let down: Vec<String> = router
        .ping_all()
        .into_iter()
        .filter_map(|(name, alive)| (!alive).then_some(name))
        .collect();
    assert_eq!(down, [owner]);

    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
