//! Observable engine state: cache, queue, and per-tenant counters.
//!
//! [`EngineStatsReport`] is the payload of a `Stats` wire request, so every
//! type here implements the `pie-store` codec with stable field order —
//! changing any field layout is a wire-format change and must be pinned by
//! the serving layer's golden tests.

use std::io::{Read, Write};

use pie_store::{Decode, Encode, StoreError};

/// Estimate-cache counters and occupancy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped to make room (LRU within a shard).
    pub evictions: u64,
    /// Entries dropped by sketch invalidation.
    pub invalidated: u64,
    /// Reports currently cached.
    pub entries: u64,
    /// Configured total capacity (0 = caching disabled).
    pub capacity: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// In-flight gate occupancy and shed count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Permits currently held.
    pub inflight: u64,
    /// Callers currently parked waiting for a permit.
    pub queued: u64,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Configured concurrent-permit bound.
    pub max_inflight: u64,
    /// Configured wait-queue bound.
    pub max_queue: u64,
}

/// One tenant's admission counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStatsRow {
    /// Tenant name (connections that never identify share the serving
    /// layer's default tenant).
    pub tenant: String,
    /// Query combinations admitted.
    pub queries_admitted: u64,
    /// Query combinations shed by quota.
    pub queries_shed: u64,
    /// Ingest records admitted.
    pub ingest_records_admitted: u64,
    /// Ingest batches shed by quota.
    pub ingests_shed: u64,
}

/// One request kind's dispatch count (e.g. `"estimate"` or `"ingest_batch"`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestCountRow {
    /// Wire-request kind, in the serving layer's canonical snake_case names.
    pub request: String,
    /// Requests of this kind dispatched since the engine started.
    pub count: u64,
}

/// Full engine observability snapshot: what a `Stats` request returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineStatsReport {
    /// Estimate-cache counters.
    pub cache: CacheStats,
    /// In-flight gate counters.
    pub queue: QueueStats,
    /// Per-tenant rows, sorted by tenant name.
    pub tenants: Vec<TenantStatsRow>,
    /// Per-request-kind dispatch counts, sorted by request name.
    pub requests: Vec<RequestCountRow>,
    /// Milliseconds since the engine was constructed (summed across a
    /// fleet by [`absorb`](Self::absorb): total engine-milliseconds).
    pub uptime_ms: u64,
    /// Worker threads the host reports as available (fleet sum under
    /// [`absorb`](Self::absorb)).
    pub threads_available: u64,
    /// Crate version that built this engine; a fleet aggregate keeps the
    /// lexicographic maximum so mixed-version rollouts are visible.
    pub version: String,
}

impl EngineStatsReport {
    /// Folds another node's snapshot into this one — the scatter-gather
    /// aggregation a cluster router uses to present N engines as one.
    ///
    /// Counters and occupancy sum (capacities and bounds too: the cluster's
    /// capacity is the fleet's total); tenant rows merge by tenant name and
    /// come out sorted, so the aggregate is independent of the order nodes
    /// answered in.
    pub fn absorb(&mut self, other: &EngineStatsReport) {
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.evictions += other.cache.evictions;
        self.cache.invalidated += other.cache.invalidated;
        self.cache.entries += other.cache.entries;
        self.cache.capacity += other.cache.capacity;
        self.queue.inflight += other.queue.inflight;
        self.queue.queued += other.queue.queued;
        self.queue.shed += other.queue.shed;
        self.queue.max_inflight += other.queue.max_inflight;
        self.queue.max_queue += other.queue.max_queue;
        for row in &other.tenants {
            match self
                .tenants
                .iter_mut()
                .find(|mine| mine.tenant == row.tenant)
            {
                Some(mine) => {
                    mine.queries_admitted += row.queries_admitted;
                    mine.queries_shed += row.queries_shed;
                    mine.ingest_records_admitted += row.ingest_records_admitted;
                    mine.ingests_shed += row.ingests_shed;
                }
                None => self.tenants.push(row.clone()),
            }
        }
        self.tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        for row in &other.requests {
            match self
                .requests
                .iter_mut()
                .find(|mine| mine.request == row.request)
            {
                Some(mine) => mine.count += row.count,
                None => self.requests.push(row.clone()),
            }
        }
        self.requests.sort_by(|a, b| a.request.cmp(&b.request));
        self.uptime_ms += other.uptime_ms;
        self.threads_available += other.threads_available;
        if other.version > self.version {
            self.version = other.version.clone();
        }
    }
}

impl Encode for CacheStats {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.hits.encode(w)?;
        self.misses.encode(w)?;
        self.evictions.encode(w)?;
        self.invalidated.encode(w)?;
        self.entries.encode(w)?;
        self.capacity.encode(w)
    }
}

impl Decode for CacheStats {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            hits: u64::decode(r)?,
            misses: u64::decode(r)?,
            evictions: u64::decode(r)?,
            invalidated: u64::decode(r)?,
            entries: u64::decode(r)?,
            capacity: u64::decode(r)?,
        })
    }
}

impl Encode for QueueStats {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.inflight.encode(w)?;
        self.queued.encode(w)?;
        self.shed.encode(w)?;
        self.max_inflight.encode(w)?;
        self.max_queue.encode(w)
    }
}

impl Decode for QueueStats {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            inflight: u64::decode(r)?,
            queued: u64::decode(r)?,
            shed: u64::decode(r)?,
            max_inflight: u64::decode(r)?,
            max_queue: u64::decode(r)?,
        })
    }
}

impl Encode for TenantStatsRow {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.tenant.encode(w)?;
        self.queries_admitted.encode(w)?;
        self.queries_shed.encode(w)?;
        self.ingest_records_admitted.encode(w)?;
        self.ingests_shed.encode(w)
    }
}

impl Decode for TenantStatsRow {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            tenant: String::decode(r)?,
            queries_admitted: u64::decode(r)?,
            queries_shed: u64::decode(r)?,
            ingest_records_admitted: u64::decode(r)?,
            ingests_shed: u64::decode(r)?,
        })
    }
}

impl Encode for RequestCountRow {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.request.encode(w)?;
        self.count.encode(w)
    }
}

impl Decode for RequestCountRow {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            request: String::decode(r)?,
            count: u64::decode(r)?,
        })
    }
}

impl Encode for EngineStatsReport {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.cache.encode(w)?;
        self.queue.encode(w)?;
        self.tenants.encode(w)?;
        self.requests.encode(w)?;
        self.uptime_ms.encode(w)?;
        self.threads_available.encode(w)?;
        self.version.encode(w)
    }
}

impl Decode for EngineStatsReport {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            cache: CacheStats::decode(r)?,
            queue: QueueStats::decode(r)?,
            tenants: Vec::decode(r)?,
            requests: Vec::decode(r)?,
            uptime_ms: u64::decode(r)?,
            threads_available: u64::decode(r)?,
            version: String::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_roundtrips() {
        let report = EngineStatsReport {
            cache: CacheStats {
                hits: 10,
                misses: 3,
                evictions: 1,
                invalidated: 2,
                entries: 7,
                capacity: 64,
            },
            queue: QueueStats {
                inflight: 2,
                queued: 1,
                shed: 5,
                max_inflight: 8,
                max_queue: 16,
            },
            tenants: vec![TenantStatsRow {
                tenant: "acme".into(),
                queries_admitted: 40,
                queries_shed: 2,
                ingest_records_admitted: 1000,
                ingests_shed: 1,
            }],
            requests: vec![
                RequestCountRow {
                    request: "estimate".into(),
                    count: 40,
                },
                RequestCountRow {
                    request: "ping".into(),
                    count: 2,
                },
            ],
            uptime_ms: 12_345,
            threads_available: 8,
            version: "0.9.0".into(),
        };
        let bytes = pie_store::encode_to_vec(&report).unwrap();
        let back: EngineStatsReport = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn absorb_sums_counters_and_merges_tenants_sorted() {
        let mut a = EngineStatsReport {
            cache: CacheStats {
                hits: 10,
                misses: 3,
                evictions: 1,
                invalidated: 2,
                entries: 7,
                capacity: 64,
            },
            queue: QueueStats {
                inflight: 2,
                queued: 1,
                shed: 5,
                max_inflight: 8,
                max_queue: 16,
            },
            tenants: vec![TenantStatsRow {
                tenant: "zeta".into(),
                queries_admitted: 40,
                queries_shed: 2,
                ingest_records_admitted: 1000,
                ingests_shed: 1,
            }],
            requests: vec![RequestCountRow {
                request: "estimate".into(),
                count: 40,
            }],
            uptime_ms: 1_000,
            threads_available: 4,
            version: "0.9.0".into(),
        };
        let b = EngineStatsReport {
            cache: CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                invalidated: 0,
                entries: 3,
                capacity: 64,
            },
            queue: QueueStats {
                inflight: 0,
                queued: 0,
                shed: 1,
                max_inflight: 8,
                max_queue: 16,
            },
            tenants: vec![
                TenantStatsRow {
                    tenant: "acme".into(),
                    queries_admitted: 5,
                    ..TenantStatsRow::default()
                },
                TenantStatsRow {
                    tenant: "zeta".into(),
                    queries_admitted: 2,
                    queries_shed: 1,
                    ..TenantStatsRow::default()
                },
            ],
            requests: vec![
                RequestCountRow {
                    request: "estimate".into(),
                    count: 2,
                },
                RequestCountRow {
                    request: "batch_estimate".into(),
                    count: 1,
                },
            ],
            uptime_ms: 500,
            threads_available: 4,
            version: "0.10.0".into(),
        };
        a.absorb(&b);
        assert_eq!(a.cache.hits, 11);
        assert_eq!(a.cache.capacity, 128, "fleet capacity is the sum");
        assert_eq!(a.queue.shed, 6);
        assert_eq!(a.queue.max_inflight, 16);
        let names: Vec<&str> = a.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["acme", "zeta"], "merged rows come out sorted");
        assert_eq!(a.tenants[1].queries_admitted, 42);
        assert_eq!(a.tenants[1].queries_shed, 3);
        let kinds: Vec<&str> = a.requests.iter().map(|r| r.request.as_str()).collect();
        assert_eq!(kinds, ["batch_estimate", "estimate"], "requests sorted");
        assert_eq!(a.requests[1].count, 42);
        assert_eq!(a.uptime_ms, 1_500, "fleet uptime is engine-ms summed");
        assert_eq!(a.threads_available, 8);
        assert_eq!(a.version, "0.9.0", "lexicographic max survives absorb");
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
