//! Observable engine state: cache, queue, and per-tenant counters.
//!
//! [`EngineStatsReport`] is the payload of a `Stats` wire request, so every
//! type here implements the `pie-store` codec with stable field order —
//! changing any field layout is a wire-format change and must be pinned by
//! the serving layer's golden tests.

use std::io::{Read, Write};

use pie_store::{Decode, Encode, StoreError};

/// Estimate-cache counters and occupancy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped to make room (LRU within a shard).
    pub evictions: u64,
    /// Entries dropped by sketch invalidation.
    pub invalidated: u64,
    /// Reports currently cached.
    pub entries: u64,
    /// Configured total capacity (0 = caching disabled).
    pub capacity: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// In-flight gate occupancy and shed count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Permits currently held.
    pub inflight: u64,
    /// Callers currently parked waiting for a permit.
    pub queued: u64,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Configured concurrent-permit bound.
    pub max_inflight: u64,
    /// Configured wait-queue bound.
    pub max_queue: u64,
}

/// One tenant's admission counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStatsRow {
    /// Tenant name (connections that never identify share the serving
    /// layer's default tenant).
    pub tenant: String,
    /// Query combinations admitted.
    pub queries_admitted: u64,
    /// Query combinations shed by quota.
    pub queries_shed: u64,
    /// Ingest records admitted.
    pub ingest_records_admitted: u64,
    /// Ingest batches shed by quota.
    pub ingests_shed: u64,
}

/// Full engine observability snapshot: what a `Stats` request returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineStatsReport {
    /// Estimate-cache counters.
    pub cache: CacheStats,
    /// In-flight gate counters.
    pub queue: QueueStats,
    /// Per-tenant rows, sorted by tenant name.
    pub tenants: Vec<TenantStatsRow>,
}

impl Encode for CacheStats {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.hits.encode(w)?;
        self.misses.encode(w)?;
        self.evictions.encode(w)?;
        self.invalidated.encode(w)?;
        self.entries.encode(w)?;
        self.capacity.encode(w)
    }
}

impl Decode for CacheStats {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            hits: u64::decode(r)?,
            misses: u64::decode(r)?,
            evictions: u64::decode(r)?,
            invalidated: u64::decode(r)?,
            entries: u64::decode(r)?,
            capacity: u64::decode(r)?,
        })
    }
}

impl Encode for QueueStats {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.inflight.encode(w)?;
        self.queued.encode(w)?;
        self.shed.encode(w)?;
        self.max_inflight.encode(w)?;
        self.max_queue.encode(w)
    }
}

impl Decode for QueueStats {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            inflight: u64::decode(r)?,
            queued: u64::decode(r)?,
            shed: u64::decode(r)?,
            max_inflight: u64::decode(r)?,
            max_queue: u64::decode(r)?,
        })
    }
}

impl Encode for TenantStatsRow {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.tenant.encode(w)?;
        self.queries_admitted.encode(w)?;
        self.queries_shed.encode(w)?;
        self.ingest_records_admitted.encode(w)?;
        self.ingests_shed.encode(w)
    }
}

impl Decode for TenantStatsRow {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            tenant: String::decode(r)?,
            queries_admitted: u64::decode(r)?,
            queries_shed: u64::decode(r)?,
            ingest_records_admitted: u64::decode(r)?,
            ingests_shed: u64::decode(r)?,
        })
    }
}

impl Encode for EngineStatsReport {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.cache.encode(w)?;
        self.queue.encode(w)?;
        self.tenants.encode(w)
    }
}

impl Decode for EngineStatsReport {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            cache: CacheStats::decode(r)?,
            queue: QueueStats::decode(r)?,
            tenants: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_roundtrips() {
        let report = EngineStatsReport {
            cache: CacheStats {
                hits: 10,
                misses: 3,
                evictions: 1,
                invalidated: 2,
                entries: 7,
                capacity: 64,
            },
            queue: QueueStats {
                inflight: 2,
                queued: 1,
                shed: 5,
                max_inflight: 8,
                max_queue: 16,
            },
            tenants: vec![TenantStatsRow {
                tenant: "acme".into(),
                queries_admitted: 40,
                queries_shed: 2,
                ingest_records_admitted: 1000,
                ingests_shed: 1,
            }],
        };
        let bytes = pie_store::encode_to_vec(&report).unwrap();
        let back: EngineStatsReport = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
