//! The estimate cache: bounded, sharded, fingerprint-keyed.
//!
//! A cached report is addressed by [`CacheKey`]: the sketch *name*, the
//! query (estimator suite + statistic), and the sketch's content
//! *fingerprint*.  Keying on the fingerprint — not just the name — is what
//! makes invalidation race-free: when ingest or a snapshot load rebinds a
//! name to different data, every lookup made on the new entry carries the
//! new fingerprint and can only miss, even if a slow in-flight query from
//! the old incarnation inserts its (old-fingerprint) result *after* the
//! swap.  [`invalidate_sketch`](EstimateCache::invalidate_sketch) therefore
//! only reclaims space and keeps the entry count honest; correctness never
//! depends on its timing.
//!
//! Shards are chosen by sketch name alone, so an invalidation locks exactly
//! one shard.  Eviction is least-recently-used within a shard, driven by a
//! global monotone tick stamped on every hit and insert.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use partial_info_estimators::PipelineReport;

use crate::stats::CacheStats;

/// Number of independent cache shards; matches the catalog's lock sharding
/// so unrelated sketches never contend.
const CACHE_SHARDS: usize = 8;

/// Everything that determines a cached report bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Catalog name the query addressed.
    pub sketch: String,
    /// Estimator suite name.
    pub estimator: String,
    /// Statistic name.
    pub statistic: String,
    /// Content fingerprint of the sketch incarnation the report was (or
    /// would be) computed from; see
    /// [`CatalogEntry::fingerprint`](partial_info_estimators::CatalogEntry::fingerprint).
    pub fingerprint: u64,
}

/// One cached report plus its recency stamp.
struct CacheSlot {
    report: Arc<PipelineReport>,
    last_used: u64,
}

/// A bounded, sharded `CacheKey → PipelineReport` map with LRU eviction and
/// hit/miss/eviction/invalidation counters.  See the [module docs](self)
/// for the invalidation model.
pub struct EstimateCache {
    shards: Vec<Mutex<HashMap<CacheKey, CacheSlot>>>,
    /// Per-shard capacity; 0 disables the cache entirely.
    per_shard_capacity: usize,
    /// Total configured capacity (reported in stats).
    capacity: usize,
    /// Global recency clock, bumped on every hit and insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
}

impl std::fmt::Debug for EstimateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimateCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// FNV-1a over the sketch name, finished with a splitmix64-style mix so
/// short names still spread across shards.
fn shard_index(sketch: &str) -> usize {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in sketch.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % CACHE_SHARDS as u64) as usize
}

impl EstimateCache {
    /// Creates a cache holding at most `capacity` reports in total
    /// (`capacity == 0` disables caching: every lookup misses and inserts
    /// are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn shard(&self, sketch: &str) -> &Mutex<HashMap<CacheKey, CacheSlot>> {
        &self.shards[shard_index(sketch)]
    }

    /// Looks `key` up, counting exactly one hit or one miss and refreshing
    /// the entry's recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<PipelineReport>> {
        let mut shard = self
            .shard(&key.sketch)
            .lock()
            .expect("cache shard poisoned");
        match shard.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.report))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → report`, evicting the shard's
    /// least-recently-used entry if the shard is full.
    pub fn insert(&self, key: CacheKey, report: Arc<PipelineReport>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard(&key.sketch)
            .lock()
            .expect("cache shard poisoned");
        if !shard.contains_key(&key) && shard.len() >= self.per_shard_capacity {
            // LRU within the shard: scan for the stalest stamp.  Shards are
            // small (capacity / 8), so the scan is cheap and keeps the hot
            // path free of auxiliary ordering structures.
            if let Some(stalest) = shard
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&stalest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, CacheSlot { report, last_used });
    }

    /// Drops every cached report for `sketch` (any fingerprint), returning
    /// how many entries were reclaimed.  Locks exactly one shard.
    pub fn invalidate_sketch(&self, sketch: &str) -> usize {
        let mut shard = self.shard(sketch).lock().expect("cache shard poisoned");
        let before = shard.len();
        shard.retain(|key, _| key.sketch != sketch);
        let dropped = before - shard.len();
        self.invalidated
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Snapshot of the cache counters and current occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(statistic: &str, truth: f64) -> Arc<PipelineReport> {
        Arc::new(PipelineReport {
            statistic: statistic.to_string(),
            truth,
            trials: 1,
            estimators: Vec::new(),
        })
    }

    fn key(sketch: &str, estimator: &str, fingerprint: u64) -> CacheKey {
        CacheKey {
            sketch: sketch.into(),
            estimator: estimator.into(),
            statistic: "max_dominance".into(),
            fingerprint,
        }
    }

    #[test]
    fn hit_miss_counters_are_exact() {
        let cache = EstimateCache::new(64);
        let k = key("a", "e", 1);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), report("s", 1.0));
        assert!(cache.get(&k).is_some());
        // Same name+query, different fingerprint: a distinct key.
        assert!(cache.get(&key("a", "e", 2)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn invalidation_drops_only_the_named_sketch() {
        let cache = EstimateCache::new(64);
        cache.insert(key("a", "e1", 1), report("s", 1.0));
        cache.insert(key("a", "e2", 1), report("s", 1.0));
        cache.insert(key("b", "e1", 1), report("s", 1.0));
        assert_eq!(cache.invalidate_sketch("a"), 2);
        assert!(cache.get(&key("a", "e1", 1)).is_none());
        assert!(cache.get(&key("b", "e1", 1)).is_some());
        assert_eq!(cache.stats().invalidated, 2);
        assert_eq!(cache.invalidate_sketch("nope"), 0);
    }

    #[test]
    fn full_shard_evicts_least_recently_used() {
        // Capacity 8 → one slot per shard; same sketch name pins one shard.
        let cache = EstimateCache::new(8);
        cache.insert(key("a", "old", 1), report("s", 1.0));
        cache.insert(key("a", "new", 1), report("s", 2.0));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key("a", "old", 1)).is_none());
        assert!(cache.get(&key("a", "new", 1)).is_some());
        // Refresh "new", add a third: "new" must survive again.
        cache.insert(key("a", "third", 1), report("s", 3.0));
        assert!(cache.get(&key("a", "new", 1)).is_none());
        assert!(cache.get(&key("a", "third", 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = EstimateCache::new(0);
        let k = key("a", "e", 1);
        cache.insert(k.clone(), report("s", 1.0));
        assert!(cache.get(&k).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
