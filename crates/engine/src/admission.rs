//! Admission control: per-tenant token-bucket quotas and a bounded
//! in-flight gate.
//!
//! Both mechanisms answer overload the same way — a typed [`Shed`] carrying
//! a retry hint — instead of queueing without bound or panicking.  A shed
//! request was **not** executed, so a client may always retry it safely.
//!
//! Token buckets are deterministic functions of `(state, now_nanos)`; the
//! production clock is a monotonic [`Instant`] anchored at controller
//! construction, and tests drive the `_at` variants with explicit
//! nanosecond timestamps.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::stats::{QueueStats, TenantStatsRow};

/// A request was refused by admission control: quota exhausted or the
/// in-flight queue full.  The request was not executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shed {
    /// Which limiter refused (for the error message / Stats attribution).
    pub what: String,
    /// Earliest retry that could plausibly succeed, in milliseconds.
    pub retry_after_ms: u64,
}

impl fmt::Display for Shed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "overloaded ({}); retry after {} ms",
            self.what, self.retry_after_ms
        )
    }
}

impl std::error::Error for Shed {}

/// One token bucket: capacity `burst`, refilled at `rate` tokens/second.
#[derive(Debug, Clone)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_nanos: u64,
}

impl TokenBucket {
    fn new(rate: f64, burst: f64) -> Self {
        Self {
            rate,
            burst,
            tokens: burst,
            last_nanos: 0,
        }
    }

    /// Refills for the elapsed time, then takes `cost` tokens or reports
    /// how long (ms) until the deficit would refill.
    fn try_take(&mut self, cost: f64, now_nanos: u64) -> Result<(), u64> {
        if self.rate.is_infinite() {
            return Ok(());
        }
        let elapsed = now_nanos.saturating_sub(self.last_nanos);
        self.last_nanos = now_nanos;
        self.tokens = (self.tokens + elapsed as f64 * 1e-9 * self.rate).min(self.burst);
        if self.tokens >= cost {
            self.tokens -= cost;
            Ok(())
        } else {
            let deficit = cost - self.tokens;
            let ms = if self.rate > 0.0 {
                (deficit / self.rate * 1e3).ceil() as u64
            } else {
                u64::MAX
            };
            Err(ms.max(1))
        }
    }
}

/// A tenant's rate limits.  Rates are tokens per second; a query costs one
/// token per `(estimator, statistic)` combination it asks for, an ingest
/// costs one token per record.  `f64::INFINITY` rates never shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained query combinations per second.
    pub query_rate: f64,
    /// Query burst capacity (bucket size).
    pub query_burst: f64,
    /// Sustained ingested records per second.
    pub ingest_rate: f64,
    /// Ingest burst capacity (bucket size).
    pub ingest_burst: f64,
}

impl TenantQuota {
    /// A quota that never sheds (the default for unconfigured tenants).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            query_rate: f64::INFINITY,
            query_burst: f64::INFINITY,
            ingest_rate: f64::INFINITY,
            ingest_burst: f64::INFINITY,
        }
    }

    /// A symmetric quota: `rate` tokens/second sustained, `burst` capacity,
    /// applied to both queries and ingest.
    #[must_use]
    pub fn per_second(rate: f64, burst: f64) -> Self {
        Self {
            query_rate: rate,
            query_burst: burst,
            ingest_rate: rate,
            ingest_burst: burst,
        }
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// One tenant's buckets and counters.
#[derive(Debug)]
struct TenantState {
    query: TokenBucket,
    ingest: TokenBucket,
    queries_admitted: u64,
    queries_shed: u64,
    ingest_records_admitted: u64,
    ingests_shed: u64,
}

/// Per-tenant token-bucket admission with admitted/shed accounting.
///
/// Tenants materialize on first contact with the quota configured for
/// their name (or the default quota).  All clock reads come from one
/// monotonic anchor, so bucket math is immune to wall-clock steps.
#[derive(Debug)]
pub struct AdmissionController {
    start: Instant,
    default_quota: TenantQuota,
    quotas: HashMap<String, TenantQuota>,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl AdmissionController {
    /// Creates a controller with `default_quota` for unlisted tenants and
    /// per-name overrides in `quotas`.
    #[must_use]
    pub fn new(default_quota: TenantQuota, quotas: HashMap<String, TenantQuota>) -> Self {
        Self {
            start: Instant::now(),
            default_quota,
            quotas,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn with_tenant<T>(&self, tenant: &str, f: impl FnOnce(&mut TenantState) -> T) -> T {
        let mut tenants = self.tenants.lock().expect("tenant map poisoned");
        let state = tenants.entry(tenant.to_string()).or_insert_with(|| {
            let quota = self
                .quotas
                .get(tenant)
                .copied()
                .unwrap_or(self.default_quota);
            TenantState {
                query: TokenBucket::new(quota.query_rate, quota.query_burst),
                ingest: TokenBucket::new(quota.ingest_rate, quota.ingest_burst),
                queries_admitted: 0,
                queries_shed: 0,
                ingest_records_admitted: 0,
                ingests_shed: 0,
            }
        });
        f(state)
    }

    /// Admits `combinations` query combinations for `tenant`, or sheds.
    ///
    /// # Errors
    /// [`Shed`] with a refill-based retry hint when the quota is exhausted.
    pub fn admit_query(&self, tenant: &str, combinations: u64) -> Result<(), Shed> {
        self.admit_query_at(tenant, combinations, self.now_nanos())
    }

    /// [`admit_query`](Self::admit_query) at an explicit monotonic
    /// timestamp (deterministic tests).
    ///
    /// # Errors
    /// As [`admit_query`](Self::admit_query).
    pub fn admit_query_at(
        &self,
        tenant: &str,
        combinations: u64,
        now_nanos: u64,
    ) -> Result<(), Shed> {
        self.with_tenant(tenant, |state| {
            match state.query.try_take(combinations as f64, now_nanos) {
                Ok(()) => {
                    state.queries_admitted += combinations;
                    Ok(())
                }
                Err(retry_after_ms) => {
                    state.queries_shed += combinations;
                    Err(Shed {
                        what: format!("query quota for tenant {tenant:?}"),
                        retry_after_ms,
                    })
                }
            }
        })
    }

    /// Admits an ingest batch of `records` records for `tenant`, or sheds.
    ///
    /// # Errors
    /// [`Shed`] with a refill-based retry hint when the quota is exhausted.
    pub fn admit_ingest(&self, tenant: &str, records: u64) -> Result<(), Shed> {
        self.admit_ingest_at(tenant, records, self.now_nanos())
    }

    /// [`admit_ingest`](Self::admit_ingest) at an explicit monotonic
    /// timestamp (deterministic tests).
    ///
    /// # Errors
    /// As [`admit_ingest`](Self::admit_ingest).
    pub fn admit_ingest_at(&self, tenant: &str, records: u64, now_nanos: u64) -> Result<(), Shed> {
        self.with_tenant(tenant, |state| {
            match state.ingest.try_take(records as f64, now_nanos) {
                Ok(()) => {
                    state.ingest_records_admitted += records;
                    Ok(())
                }
                Err(retry_after_ms) => {
                    state.ingests_shed += 1;
                    Err(Shed {
                        what: format!("ingest quota for tenant {tenant:?}"),
                        retry_after_ms,
                    })
                }
            }
        })
    }

    /// Per-tenant counters, sorted by tenant name for determinism.
    #[must_use]
    pub fn stats(&self) -> Vec<TenantStatsRow> {
        let tenants = self.tenants.lock().expect("tenant map poisoned");
        let mut rows: Vec<TenantStatsRow> = tenants
            .iter()
            .map(|(tenant, state)| TenantStatsRow {
                tenant: tenant.clone(),
                queries_admitted: state.queries_admitted,
                queries_shed: state.queries_shed,
                ingest_records_admitted: state.ingest_records_admitted,
                ingests_shed: state.ingests_shed,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }
}

/// Interior state of the gate: who is running, who is parked waiting.
#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

/// Bounds concurrent work: at most `max_inflight` permits out at once, at
/// most `max_queue` callers parked waiting for one.  A caller beyond both
/// bounds is shed immediately — the queue cannot grow without bound.
#[derive(Debug)]
pub struct InflightGate {
    state: Mutex<GateState>,
    available: Condvar,
    max_inflight: usize,
    max_queue: usize,
    shed: AtomicU64,
}

/// Holder of one in-flight slot; dropping it releases the slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct InflightPermit<'a> {
    gate: &'a InflightGate,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("gate poisoned");
        state.inflight -= 1;
        drop(state);
        self.gate.available.notify_one();
    }
}

impl InflightGate {
    /// Creates a gate admitting `max_inflight` concurrent permits with a
    /// wait queue of at most `max_queue` (`max_inflight` is clamped to at
    /// least 1 so the gate can always make progress).
    #[must_use]
    pub fn new(max_inflight: usize, max_queue: usize) -> Self {
        Self {
            state: Mutex::new(GateState::default()),
            available: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
            shed: AtomicU64::new(0),
        }
    }

    /// Takes an in-flight slot, parking in the bounded queue if all slots
    /// are busy.
    ///
    /// # Errors
    /// [`Shed`] immediately when the queue is also full.
    pub fn admit(&self) -> Result<InflightPermit<'_>, Shed> {
        let mut state = self.state.lock().expect("gate poisoned");
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Ok(InflightPermit { gate: self });
        }
        if state.queued >= self.max_queue {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Shed {
                what: "in-flight queue".into(),
                retry_after_ms: 50,
            });
        }
        state.queued += 1;
        while state.inflight >= self.max_inflight {
            state = self.available.wait(state).expect("gate poisoned");
        }
        state.queued -= 1;
        state.inflight += 1;
        Ok(InflightPermit { gate: self })
    }

    /// Snapshot of queue depth, configured bounds, and the shed count.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let state = self.state.lock().expect("gate poisoned");
        QueueStats {
            inflight: state.inflight as u64,
            queued: state.queued as u64,
            shed: self.shed.load(Ordering::Relaxed),
            max_inflight: self.max_inflight as u64,
            max_queue: self.max_queue as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn bucket_sheds_past_burst_and_refills_deterministically() {
        let controller =
            AdmissionController::new(TenantQuota::per_second(2.0, 2.0), HashMap::new());
        // Burst of 2 at t=0: two admits, then a shed with a refill hint.
        assert!(controller.admit_query_at("t", 1, 0).is_ok());
        assert!(controller.admit_query_at("t", 1, 0).is_ok());
        let shed = controller.admit_query_at("t", 1, 0).unwrap_err();
        assert_eq!(shed.retry_after_ms, 500, "1 token / 2 per sec = 500 ms");
        // Half a second later one token has refilled.
        assert!(controller.admit_query_at("t", 1, SEC / 2).is_ok());
        assert!(controller.admit_query_at("t", 1, SEC / 2).is_err());
        let rows = controller.stats();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].queries_admitted, 3);
        assert_eq!(rows[0].queries_shed, 2);
    }

    #[test]
    fn ingest_cost_is_per_record() {
        let controller =
            AdmissionController::new(TenantQuota::per_second(10.0, 10.0), HashMap::new());
        assert!(controller.admit_ingest_at("t", 10, 0).is_ok());
        assert!(controller.admit_ingest_at("t", 1, 0).is_err());
        let rows = controller.stats();
        assert_eq!(rows[0].ingest_records_admitted, 10);
        assert_eq!(rows[0].ingests_shed, 1);
    }

    #[test]
    fn per_tenant_quotas_are_independent() {
        let mut quotas = HashMap::new();
        quotas.insert("small".to_string(), TenantQuota::per_second(1.0, 1.0));
        let controller = AdmissionController::new(TenantQuota::unlimited(), quotas);
        assert!(controller.admit_query_at("small", 1, 0).is_ok());
        assert!(controller.admit_query_at("small", 1, 0).is_err());
        for _ in 0..100 {
            assert!(controller.admit_query_at("big", 1, 0).is_ok());
        }
        let rows = controller.stats();
        assert_eq!(rows[0].tenant, "big");
        assert_eq!(rows[0].queries_shed, 0);
        assert_eq!(rows[1].tenant, "small");
        assert_eq!(rows[1].queries_shed, 1);
    }

    #[test]
    fn gate_sheds_only_past_queue_capacity() {
        let gate = InflightGate::new(1, 0);
        let permit = gate.admit().unwrap();
        let shed = gate.admit().unwrap_err();
        assert_eq!(shed.what, "in-flight queue");
        assert_eq!(gate.stats().shed, 1);
        drop(permit);
        let _again = gate.admit().unwrap();
        assert_eq!(gate.stats().inflight, 1);
    }

    #[test]
    fn queued_waiters_run_after_release() {
        let gate = std::sync::Arc::new(InflightGate::new(1, 8));
        let permit = gate.admit().unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gate = std::sync::Arc::clone(&gate);
                std::thread::spawn(move || {
                    let _permit = gate.admit().expect("queue has room");
                })
            })
            .collect();
        // Wait until all four are parked, then release the head permit.
        while gate.stats().queued < 4 {
            std::thread::yield_now();
        }
        drop(permit);
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = gate.stats();
        assert_eq!((stats.inflight, stats.queued, stats.shed), (0, 0, 0));
    }
}
