//! Multi-tenant query engine for the PODS 2011 reproduction.
//!
//! The paper's whole premise is that **one** finalized sample answers
//! **many** downstream queries.  This crate is the serving-side layer that
//! makes repeated interrogation cheap and safe to share, sitting between a
//! sketch catalog and whatever transport fronts it:
//!
//! * [`EstimateCache`] — a sharded, bounded result cache keyed on
//!   `(sketch, estimator, statistic, fingerprint)`.  The fingerprint is a
//!   content digest of the full sketch state
//!   ([`CatalogEntry::fingerprint`]), so a report cached for one
//!   incarnation of a name can **never** be served after the name is
//!   rebound to different data — a stale hit is structurally impossible,
//!   and explicit [`invalidation`](EstimateCache::invalidate_sketch) merely
//!   reclaims the dead entries' space.
//! * [`AdmissionController`] — per-tenant token-bucket quotas over queries
//!   and ingested records, with per-tenant admitted/shed counters.
//! * [`InflightGate`] — a bounded in-flight limiter with a bounded wait
//!   queue: excess load is **shed** with a retry hint instead of piling up
//!   threads without bound.
//! * [`QueryEngine`] — the three wired together behind one type, plus an
//!   [`EngineStatsReport`] snapshot (cache hit rate, queue depth, shed and
//!   per-tenant counters) that implements the `pie-store` codec so a
//!   `Stats` wire endpoint can ship it as-is.
//!
//! Everything is pure `std`: plain mutex-sharded maps, a condvar gate, and
//! monotonic-clock token buckets.
//!
//! ```
//! use pie_engine::{CacheKey, EngineConfig, QueryEngine};
//! use partial_info_estimators::{CatalogEntry, Scheme};
//! use partial_info_estimators::datagen::paper_example;
//!
//! let engine = QueryEngine::new(EngineConfig::default());
//! let entry = CatalogEntry::build(
//!     paper_example().take_instances(2),
//!     Scheme::oblivious(0.5),
//!     1,
//!     10,
//!     0,
//! )
//! .unwrap();
//!
//! let key = CacheKey {
//!     sketch: "example".into(),
//!     estimator: "max_oblivious".into(),
//!     statistic: "max_dominance".into(),
//!     fingerprint: entry.fingerprint(),
//! };
//! // First call computes, second is served from the cache — bit-identical.
//! let first = engine
//!     .estimate_cached(key.clone(), || entry.estimate_named("max_oblivious", "max_dominance", Some(1)))
//!     .unwrap();
//! let second = engine
//!     .estimate_cached(key, || entry.estimate_named("max_oblivious", "max_dominance", Some(1)))
//!     .unwrap();
//! assert_eq!(first, second);
//! assert_eq!(engine.stats().cache.hits, 1);
//! ```
//!
//! [`CatalogEntry::fingerprint`]:
//! partial_info_estimators::CatalogEntry::fingerprint

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod stats;

pub use admission::{AdmissionController, InflightGate, InflightPermit, Shed, TenantQuota};
pub use cache::{CacheKey, EstimateCache};
pub use engine::{EngineConfig, QueryEngine};
pub use stats::{CacheStats, EngineStatsReport, QueueStats, RequestCountRow, TenantStatsRow};
