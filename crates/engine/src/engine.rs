//! [`QueryEngine`]: the cache, admission controller, and in-flight gate
//! wired together behind one configurable type.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use partial_info_estimators::PipelineReport;

use crate::admission::{AdmissionController, InflightGate, InflightPermit, Shed, TenantQuota};
use crate::cache::{CacheKey, EstimateCache};
use crate::stats::{EngineStatsReport, RequestCountRow};

/// Tunables for a [`QueryEngine`].  The defaults are permissive — a large
/// cache, generous concurrency, unlimited quotas — so wrapping an existing
/// server in an engine changes no observable behavior until limits are
/// configured.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total cached reports across all sketches (0 disables caching).
    pub cache_capacity: usize,
    /// Concurrent estimation permits.
    pub max_inflight: usize,
    /// Callers allowed to wait for a permit before shedding.
    pub max_queue: usize,
    /// Quota for tenants without an explicit entry in `tenant_quotas`.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, TenantQuota)>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 1024,
            max_inflight: 64,
            max_queue: 1024,
            default_quota: TenantQuota::unlimited(),
            tenant_quotas: Vec::new(),
        }
    }
}

/// The multi-tenant query engine: see the [crate docs](crate) for the
/// moving parts and the invalidation model.
#[derive(Debug)]
pub struct QueryEngine {
    cache: EstimateCache,
    admission: AdmissionController,
    gate: InflightGate,
    requests: Mutex<BTreeMap<String, u64>>,
    started: Instant,
}

impl QueryEngine {
    /// Builds an engine from `config`.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self {
            cache: EstimateCache::new(config.cache_capacity),
            admission: AdmissionController::new(
                config.default_quota,
                config.tenant_quotas.into_iter().collect::<HashMap<_, _>>(),
            ),
            gate: InflightGate::new(config.max_inflight, config.max_queue),
            requests: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// Counts one dispatched request of `kind` (the serving layer's
    /// canonical snake_case name, e.g. `"estimate"`).  Counts surface in
    /// [`stats`](Self::stats) as [`RequestCountRow`]s sorted by kind.
    pub fn note_request(&self, kind: &str) {
        let mut requests = self.requests.lock().expect("request counters poisoned");
        *requests.entry(kind.to_string()).or_insert(0) += 1;
    }

    /// The estimate cache.
    #[must_use]
    pub fn cache(&self) -> &EstimateCache {
        &self.cache
    }

    /// The per-tenant admission controller.
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The bounded in-flight gate.  Take a permit around each unit of
    /// estimation work:
    ///
    /// ```
    /// # let engine = pie_engine::QueryEngine::new(pie_engine::EngineConfig::default());
    /// let permit = engine.gate().admit()?;
    /// // ... compute while holding the permit ...
    /// drop(permit);
    /// # Ok::<(), pie_engine::Shed>(())
    /// ```
    #[must_use]
    pub fn gate(&self) -> &InflightGate {
        &self.gate
    }

    /// Convenience for `admission().admit_query` + `gate().admit()` in the
    /// order a dispatcher wants them: quota first (cheap, per-tenant), then
    /// an in-flight slot.
    ///
    /// # Errors
    /// [`Shed`] from whichever limiter refused.
    pub fn admit_query(&self, tenant: &str, combinations: u64) -> Result<InflightPermit<'_>, Shed> {
        self.admission.admit_query(tenant, combinations)?;
        self.gate.admit()
    }

    /// Serves `key` from the cache, or runs `compute` and caches its
    /// report.  Lookups count exactly one hit or miss each; concurrent
    /// misses on the same key may compute twice, but every computation for
    /// a given key is bit-identical (the fingerprint pins the inputs), so
    /// the duplicate insert is harmless.
    ///
    /// # Errors
    /// Whatever `compute` returns; a failed computation caches nothing.
    pub fn estimate_cached<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<PipelineReport, E>,
    ) -> Result<Arc<PipelineReport>, E> {
        if let Some(report) = self.cache.get(&key) {
            return Ok(report);
        }
        let report = Arc::new(compute()?);
        self.cache.insert(key, Arc::clone(&report));
        Ok(report)
    }

    /// Drops every cached report for `sketch`; call after ingest finalizes
    /// or a snapshot load rebinds the name.  Returns the reclaimed count.
    pub fn invalidate_sketch(&self, sketch: &str) -> usize {
        self.cache.invalidate_sketch(sketch)
    }

    /// Full observability snapshot (the `Stats` wire payload).
    #[must_use]
    pub fn stats(&self) -> EngineStatsReport {
        let requests = self
            .requests
            .lock()
            .expect("request counters poisoned")
            .iter()
            .map(|(request, &count)| RequestCountRow {
                request: request.clone(),
                count,
            })
            .collect();
        EngineStatsReport {
            cache: self.cache.stats(),
            queue: self.gate.stats(),
            tenants: self.admission.stats(),
            requests,
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            threads_available: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sketch: &str, fingerprint: u64) -> CacheKey {
        CacheKey {
            sketch: sketch.into(),
            estimator: "max_oblivious".into(),
            statistic: "max_dominance".into(),
            fingerprint,
        }
    }

    fn report(truth: f64) -> PipelineReport {
        PipelineReport {
            statistic: "max_dominance".into(),
            truth,
            trials: 1,
            estimators: Vec::new(),
        }
    }

    #[test]
    fn estimate_cached_computes_once_per_key() {
        let engine = QueryEngine::new(EngineConfig::default());
        let mut computes = 0;
        for _ in 0..3 {
            let got = engine
                .estimate_cached(key("a", 1), || {
                    computes += 1;
                    Ok::<_, Shed>(report(7.0))
                })
                .unwrap();
            assert_eq!(got.truth, 7.0);
        }
        assert_eq!(computes, 1);
        let stats = engine.stats();
        assert_eq!((stats.cache.hits, stats.cache.misses), (2, 1));
    }

    #[test]
    fn failed_compute_caches_nothing() {
        let engine = QueryEngine::new(EngineConfig::default());
        let err = engine
            .estimate_cached(key("a", 1), || Err::<PipelineReport, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(engine.stats().cache.entries, 0);
        // The next call must compute again.
        engine
            .estimate_cached(key("a", 1), || Ok::<_, Shed>(report(1.0)))
            .unwrap();
        assert_eq!(engine.stats().cache.misses, 2);
    }

    #[test]
    fn invalidation_then_new_fingerprint_misses() {
        let engine = QueryEngine::new(EngineConfig::default());
        engine
            .estimate_cached(key("a", 1), || Ok::<_, Shed>(report(1.0)))
            .unwrap();
        assert_eq!(engine.invalidate_sketch("a"), 1);
        // Post-rebind lookups carry the new fingerprint: a guaranteed miss
        // even if a stale insert had raced past the invalidation.
        let fresh = engine
            .estimate_cached(key("a", 2), || Ok::<_, Shed>(report(2.0)))
            .unwrap();
        assert_eq!(fresh.truth, 2.0);
    }

    #[test]
    fn admit_query_combines_quota_and_gate() {
        let engine = QueryEngine::new(EngineConfig {
            max_inflight: 1,
            max_queue: 0,
            default_quota: TenantQuota::per_second(0.0, 3.0),
            ..EngineConfig::default()
        });
        let permit = engine.admit_query("t", 1).unwrap();
        // Quota admits (burning a token), but the gate is full and its
        // queue empty — a gate shed.
        assert!(engine.admit_query("t", 1).is_err());
        drop(permit);
        let _second = engine.admit_query("t", 1).unwrap();
        // The burst of 3 is now spent and the quota itself sheds.
        assert!(engine.admit_query("t", 1).is_err());
        let stats = engine.stats();
        assert_eq!(stats.queue.shed, 1);
        let row = &stats.tenants[0];
        assert_eq!(row.queries_admitted, 3);
        assert_eq!(row.queries_shed, 1);
    }
}
