//! One multiplexed connection's state: nonblocking read/write halves, the
//! incremental frame decoder, the per-connection work FIFO, and a bounded
//! write queue.
//!
//! The event loop owns every [`Connection`] and drives it purely by
//! readiness: `handle_readable` pulls whatever bytes the socket has and
//! feeds them to a [`FrameDecoder`]; complete frames become [`Work`] items
//! (a decoded request, or a typed wire fault to answer in-line);
//! `handle_writable` drains the response queue until the socket pushes
//! back.  Order is preserved end-to-end: work items queue in arrival order,
//! at most **one** request per connection is dispatched at a time
//! (`busy`), and faults are answered from the same FIFO position they
//! occupied in the byte stream — so responses leave in exactly the order
//! the requests came in, like the old one-thread-per-connection loop.
//!
//! Backpressure is two bounds, both of which simply stop *reading* (the
//! kernel's receive window then pushes back on the peer): a cap on parsed
//! but undispatched work items, and a cap on queued response bytes.
//! Admission control is untouched — the engine's quota/in-flight gates run
//! in the worker that executes the dispatch, exactly as before.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use pie_obs::TraceContext;
use pie_store::frame::{recoverable, FrameDecoder};

use crate::error::ServeError;
use crate::poll::{fd_of, Fd};
use crate::server::DEFAULT_TENANT;
use crate::wire::{
    decode_payload_with_trace, write_message, Request, Response, MAX_FRAME_BYTES, WIRE_MAGIC,
    WIRE_VERSION,
};

/// Most parsed-but-undispatched requests one connection may hold; past
/// this the loop stops reading the socket until dispatch catches up.
pub(crate) const MAX_PENDING_WORK: usize = 64;

/// Most queued response bytes one connection may hold; past this the loop
/// stops reading the socket until the peer drains its responses.
pub(crate) const MAX_QUEUED_WRITE_BYTES: usize = 4 * 1024 * 1024;

/// How much one `read` call asks for.
const READ_CHUNK: usize = 16 * 1024;

/// One unit of in-order connection work.
pub(crate) enum Work {
    /// A fully decoded request, to be dispatched on a worker.
    Request {
        /// The decoded request.
        request: Request,
        /// The trace context the frame carried, if any.
        trace: Option<TraceContext>,
        /// How long frame decoding took.
        decode_nanos: u64,
    },
    /// A framing/decoding fault to answer in-line with a typed error.
    /// `fatal` closes the connection once everything queued has flushed.
    Fault {
        /// The typed error to answer with.
        error: ServeError,
        /// Whether the stream position is lost.
        fatal: bool,
    },
}

/// One queued response frame, carrying its trace identity and enqueue time
/// so a full flush can be attributed back to the request.
struct QueuedFrame {
    bytes: Vec<u8>,
    trace: Option<TraceContext>,
    enqueued: Instant,
}

/// The full state of one multiplexed connection.
pub(crate) struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Parsed requests and in-stream faults, in arrival order.
    work: VecDeque<Work>,
    /// Whether one request is currently dispatched on a worker.
    busy: bool,
    /// The tenant subsequent requests bill to (follows `Identify`).
    tenant: String,
    write_queue: VecDeque<QueuedFrame>,
    /// Bytes of the queue's front buffer already written.
    write_pos: usize,
    queued_bytes: usize,
    /// Most bytes the write queue has ever held on this connection.
    write_hwm_bytes: usize,
    /// Fully flushed frames since the last [`take_flushed`](Self::take_flushed):
    /// `(trace, nanos queued before the flush completed)`.
    flushed: Vec<(Option<TraceContext>, u64)>,
    /// No more bytes will be read (peer EOF, fatal fault, or drain).
    read_closed: bool,
    /// Close once the work FIFO and write queue are empty.
    closing: bool,
    /// The socket failed; drop the connection at the next reap.
    dead: bool,
}

impl Connection {
    /// Adopts an accepted stream: nonblocking, Nagle off.
    pub(crate) fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(WIRE_MAGIC, WIRE_VERSION, MAX_FRAME_BYTES),
            work: VecDeque::new(),
            busy: false,
            tenant: DEFAULT_TENANT.to_string(),
            write_queue: VecDeque::new(),
            write_pos: 0,
            queued_bytes: 0,
            write_hwm_bytes: 0,
            flushed: Vec::new(),
            read_closed: false,
            closing: false,
            dead: false,
        })
    }

    pub(crate) fn fd(&self) -> Fd {
        fd_of(&self.stream)
    }

    /// Whether the poll set should watch this socket for readability.
    pub(crate) fn wants_read(&self) -> bool {
        !self.read_closed
            && !self.dead
            && self.work.len() < MAX_PENDING_WORK
            && self.queued_bytes < MAX_QUEUED_WRITE_BYTES
    }

    /// Whether the poll set should watch this socket for writability.
    pub(crate) fn wants_write(&self) -> bool {
        !self.dead && !self.write_queue.is_empty()
    }

    pub(crate) fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Pops the next in-order work item, marking the connection busy when
    /// it hands out a request (one dispatch in flight per connection).
    pub(crate) fn next_work(&mut self) -> Option<Work> {
        if self.busy {
            return None;
        }
        let item = self.work.pop_front()?;
        if matches!(item, Work::Request { .. }) {
            self.busy = true;
        }
        Some(item)
    }

    /// Absorbs a finished dispatch: the (possibly `Identify`-updated)
    /// tenant, the pre-encoded response frame, and the request's trace.
    pub(crate) fn complete(&mut self, tenant: String, frame: Vec<u8>, trace: Option<TraceContext>) {
        self.busy = false;
        self.tenant = tenant;
        if frame.is_empty() {
            // Response encoding failed (unreachable for well-formed
            // responses); the only honest move is to drop the connection —
            // skipping a response would desynchronize the request/response
            // pairing for everything behind it.
            self.dead = true;
            return;
        }
        self.enqueue_frame(frame, trace);
    }

    /// Encodes and queues a response produced in-line (wire faults).
    pub(crate) fn enqueue_response(&mut self, response: &Response) {
        let mut frame = Vec::new();
        if write_message(&mut frame, response).is_err() {
            self.dead = true;
            return;
        }
        self.enqueue_frame(frame, None);
    }

    fn enqueue_frame(&mut self, frame: Vec<u8>, trace: Option<TraceContext>) {
        self.queued_bytes += frame.len();
        self.write_hwm_bytes = self.write_hwm_bytes.max(self.queued_bytes);
        self.write_queue.push_back(QueuedFrame {
            bytes: frame,
            trace,
            enqueued: Instant::now(),
        });
    }

    /// Most bytes the write queue has ever held on this connection.
    pub(crate) fn write_hwm_bytes(&self) -> usize {
        self.write_hwm_bytes
    }

    /// Drains the record of frames fully flushed since the last call:
    /// `(trace, nanos spent queued)` per frame.
    pub(crate) fn take_flushed(&mut self) -> Vec<(Option<TraceContext>, u64)> {
        std::mem::take(&mut self.flushed)
    }

    /// Marks the connection closing-after-flush and stops reads (server
    /// drain, or a fatal in-stream fault).
    pub(crate) fn stop_reading(&mut self) {
        self.read_closed = true;
        self.closing = true;
    }

    /// Whether the connection has nothing left to do and can be dropped.
    pub(crate) fn finished(&self) -> bool {
        self.dead
            || (self.closing_or_hung_up()
                && !self.busy
                && self.work.is_empty()
                && self.write_queue.is_empty())
    }

    fn closing_or_hung_up(&self) -> bool {
        self.closing || self.read_closed
    }

    /// Whether the connection is idle enough for a drain to complete: no
    /// dispatch in flight, no queued work, nothing left to flush.
    pub(crate) fn quiescent(&self) -> bool {
        self.dead || (!self.busy && self.work.is_empty() && self.write_queue.is_empty())
    }

    /// Pulls every byte the socket has (up to the backpressure bounds) and
    /// turns complete frames into work items.
    pub(crate) fn handle_readable(&mut self) {
        let mut chunk = [0u8; READ_CHUNK];
        while self.wants_read() {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer hang-up.  Mid-frame bytes left in the decoder
                    // mean the stream was truncated — answer that like the
                    // blocking reader did, then close.
                    self.read_closed = true;
                    if self.decoder.buffered() > 0 {
                        let error = pie_store::StoreError::Truncated {
                            context: "frame cut by connection hang-up",
                        };
                        // Truncation is fatal: no next frame exists.
                        self.push_fault(ServeError::protocol(&error), true);
                    }
                    return;
                }
                Ok(n) => {
                    self.decoder.extend(&chunk[..n]);
                    self.parse_frames();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Drains the decoder of every complete frame currently buffered.
    fn parse_frames(&mut self) {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    let started = Instant::now();
                    match decode_payload_with_trace::<Request>(&payload) {
                        Ok((request, trace)) => self.work.push_back(Work::Request {
                            request,
                            trace,
                            decode_nanos: u64::try_from(started.elapsed().as_nanos())
                                .unwrap_or(u64::MAX),
                        }),
                        // The frame was consumed whole; only its contents
                        // were bad.  Recoverable by construction.
                        Err(error) => self.push_fault(ServeError::protocol(&error), false),
                    }
                }
                Ok(None) => return,
                Err(error) => {
                    let fatal = !recoverable(&error);
                    self.push_fault(ServeError::protocol(&error), fatal);
                    if fatal {
                        // The decoder has latched; no further byte can parse.
                        self.read_closed = true;
                        return;
                    }
                }
            }
        }
    }

    fn push_fault(&mut self, error: ServeError, fatal: bool) {
        self.work.push_back(Work::Fault { error, fatal });
    }

    /// Writes queued response bytes until the socket pushes back or the
    /// queue empties.
    pub(crate) fn handle_writable(&mut self) {
        while let Some(front) = self.write_queue.front() {
            match self.stream.write(&front.bytes[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.queued_bytes -= n;
                    if self.write_pos == front.bytes.len() {
                        let frame = self.write_queue.pop_front().expect("front exists");
                        self.flushed.push((
                            frame.trace,
                            u64::try_from(frame.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        ));
                        self.write_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}
