//! The typed failure modes of the serving boundary.
//!
//! Every way a request can fail — malformed bytes, unknown names, regime
//! mismatches, snapshot problems — is a [`ServeError`] variant.  The type
//! travels the wire (it implements the snapshot codec), so a client sees
//! the *same* typed error the server produced, and malformed input never
//! takes down a connection thread with a panic.

use std::fmt;
use std::io::{Read, Write};

use pie_store::{Decode, Encode, StoreError};

/// Why a request could not be served (or a call could not complete).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The peer's bytes did not form a valid frame or message: bad magic,
    /// wrong protocol version, checksum mismatch, truncation, an unknown
    /// tag, or trailing payload bytes.
    Protocol {
        /// Human-readable rendering of the underlying framing/codec error.
        detail: String,
    },
    /// The transport itself failed (connect, read, or write I/O error).
    /// Client-side only: a dead connection has no one to respond to.
    Transport {
        /// Human-readable rendering of the I/O error.
        detail: String,
    },
    /// Loading a catalog snapshot file failed (I/O, corruption, version).
    Snapshot {
        /// Human-readable rendering of the store error.
        detail: String,
    },
    /// No catalog entry is registered under this name.
    UnknownSketch {
        /// The name that did not resolve.
        name: String,
    },
    /// The named sketch is still ingesting and cannot answer estimation
    /// queries yet (no `last: true` batch has arrived).
    SketchNotReady {
        /// The building sketch's name.
        name: String,
    },
    /// An `IngestBatch` addressed a sketch that is already finalized.
    SketchFinalized {
        /// The finalized sketch's name.
        name: String,
    },
    /// An `IngestBatch` carried a configuration that disagrees with the
    /// batches already buffered for this sketch.
    ConfigMismatch {
        /// The sketch whose configuration disagrees.
        sketch: String,
        /// The first disagreeing field.
        field: String,
    },
    /// A record in an `IngestBatch` violates the data model (non-finite or
    /// negative value).
    InvalidRecord {
        /// What was wrong with it.
        detail: String,
    },
    /// The sketch configuration itself is invalid (out-of-range scheme
    /// parameter, nothing to finalize).
    InvalidConfig {
        /// What was wrong with it.
        detail: String,
    },
    /// No estimator suite is registered under this name.
    UnknownEstimator {
        /// The name that did not resolve.
        name: String,
    },
    /// No statistic is registered under this name.
    UnknownStatistic {
        /// The name that did not resolve.
        name: String,
    },
    /// The named estimator suite cannot run over this sketch (wrong outcome
    /// regime, wrong instance count, or non-binary data for an `OR` suite).
    EstimatorMismatch {
        /// The requested estimator suite.
        estimator: String,
        /// Why it cannot run.
        detail: String,
    },
    /// The server replied with a different response type than the request
    /// calls for — a protocol bug, surfaced rather than mis-read.
    UnexpectedResponse {
        /// What the client was waiting for.
        expected: &'static str,
    },
    /// Admission control shed the request: a tenant quota was exhausted or
    /// the in-flight queue was full.  The request was **not** executed, so
    /// retrying after the hint is always safe.
    Overloaded {
        /// Which limiter refused (quota vs. in-flight queue, and whose).
        what: String,
        /// Earliest retry that could plausibly succeed, in milliseconds.
        retry_after_ms: u64,
    },
    /// A configured socket timeout expired before the peer completed the
    /// operation (client side).  Mid-exchange the stream position is
    /// unknowable — whether the server executed the request cannot be
    /// determined — so the client reconnects before reusing the
    /// connection, and [`RetryPolicy`](crate::RetryPolicy) re-sends only
    /// **idempotent** requests after a timeout.
    Timeout {
        /// What timed out (connecting, writing the request, reading the
        /// response).
        during: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Protocol { detail } => write!(f, "protocol error: {detail}"),
            Self::Transport { detail } => write!(f, "transport error: {detail}"),
            Self::Snapshot { detail } => write!(f, "snapshot error: {detail}"),
            Self::UnknownSketch { name } => write!(f, "unknown sketch {name:?}"),
            Self::SketchNotReady { name } => {
                write!(f, "sketch {name:?} is still ingesting; send a final batch")
            }
            Self::SketchFinalized { name } => {
                write!(
                    f,
                    "sketch {name:?} is finalized and accepts no more records"
                )
            }
            Self::ConfigMismatch { sketch, field } => {
                write!(
                    f,
                    "ingest config disagrees with sketch {sketch:?} on {field}"
                )
            }
            Self::InvalidRecord { detail } => write!(f, "invalid record: {detail}"),
            Self::InvalidConfig { detail } => write!(f, "invalid sketch config: {detail}"),
            Self::UnknownEstimator { name } => write!(f, "unknown estimator suite {name:?}"),
            Self::UnknownStatistic { name } => write!(f, "unknown statistic {name:?}"),
            Self::EstimatorMismatch { estimator, detail } => {
                write!(f, "estimator suite {estimator:?} cannot run here: {detail}")
            }
            Self::UnexpectedResponse { expected } => {
                write!(
                    f,
                    "server sent a different response type (expected {expected})"
                )
            }
            Self::Overloaded {
                what,
                retry_after_ms,
            } => {
                write!(f, "overloaded ({what}); retry after {retry_after_ms} ms")
            }
            Self::Timeout { during } => write!(f, "timed out while {during}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Wraps a framing/decoding failure for the wire.
    #[must_use]
    pub fn protocol(error: &StoreError) -> Self {
        Self::Protocol {
            detail: error.to_string(),
        }
    }

    /// Wraps a transport I/O failure (client side).
    #[must_use]
    pub fn transport(error: &std::io::Error) -> Self {
        Self::Transport {
            detail: error.to_string(),
        }
    }
}

/// Stable wire tags for [`ServeError`] variants.
const TAG_PROTOCOL: u32 = 0;
const TAG_TRANSPORT: u32 = 1;
const TAG_SNAPSHOT: u32 = 2;
const TAG_UNKNOWN_SKETCH: u32 = 3;
const TAG_NOT_READY: u32 = 4;
const TAG_FINALIZED: u32 = 5;
const TAG_CONFIG_MISMATCH: u32 = 6;
const TAG_INVALID_RECORD: u32 = 7;
const TAG_INVALID_CONFIG: u32 = 8;
const TAG_UNKNOWN_ESTIMATOR: u32 = 9;
const TAG_UNKNOWN_STATISTIC: u32 = 10;
const TAG_ESTIMATOR_MISMATCH: u32 = 11;
const TAG_UNEXPECTED_RESPONSE: u32 = 12;
const TAG_OVERLOADED: u32 = 13;
const TAG_TIMEOUT: u32 = 14;

impl Encode for ServeError {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        match self {
            Self::Protocol { detail } => {
                TAG_PROTOCOL.encode(w)?;
                detail.encode(w)
            }
            Self::Transport { detail } => {
                TAG_TRANSPORT.encode(w)?;
                detail.encode(w)
            }
            Self::Snapshot { detail } => {
                TAG_SNAPSHOT.encode(w)?;
                detail.encode(w)
            }
            Self::UnknownSketch { name } => {
                TAG_UNKNOWN_SKETCH.encode(w)?;
                name.encode(w)
            }
            Self::SketchNotReady { name } => {
                TAG_NOT_READY.encode(w)?;
                name.encode(w)
            }
            Self::SketchFinalized { name } => {
                TAG_FINALIZED.encode(w)?;
                name.encode(w)
            }
            Self::ConfigMismatch { sketch, field } => {
                TAG_CONFIG_MISMATCH.encode(w)?;
                sketch.encode(w)?;
                field.encode(w)
            }
            Self::InvalidRecord { detail } => {
                TAG_INVALID_RECORD.encode(w)?;
                detail.encode(w)
            }
            Self::InvalidConfig { detail } => {
                TAG_INVALID_CONFIG.encode(w)?;
                detail.encode(w)
            }
            Self::UnknownEstimator { name } => {
                TAG_UNKNOWN_ESTIMATOR.encode(w)?;
                name.encode(w)
            }
            Self::UnknownStatistic { name } => {
                TAG_UNKNOWN_STATISTIC.encode(w)?;
                name.encode(w)
            }
            Self::EstimatorMismatch { estimator, detail } => {
                TAG_ESTIMATOR_MISMATCH.encode(w)?;
                estimator.encode(w)?;
                detail.encode(w)
            }
            Self::UnexpectedResponse { expected } => {
                TAG_UNEXPECTED_RESPONSE.encode(w)?;
                expected.to_string().encode(w)
            }
            Self::Overloaded {
                what,
                retry_after_ms,
            } => {
                TAG_OVERLOADED.encode(w)?;
                what.encode(w)?;
                retry_after_ms.encode(w)
            }
            Self::Timeout { during } => {
                TAG_TIMEOUT.encode(w)?;
                during.encode(w)
            }
        }
    }
}

impl Decode for ServeError {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(match u32::decode(r)? {
            TAG_PROTOCOL => Self::Protocol {
                detail: String::decode(r)?,
            },
            TAG_TRANSPORT => Self::Transport {
                detail: String::decode(r)?,
            },
            TAG_SNAPSHOT => Self::Snapshot {
                detail: String::decode(r)?,
            },
            TAG_UNKNOWN_SKETCH => Self::UnknownSketch {
                name: String::decode(r)?,
            },
            TAG_NOT_READY => Self::SketchNotReady {
                name: String::decode(r)?,
            },
            TAG_FINALIZED => Self::SketchFinalized {
                name: String::decode(r)?,
            },
            TAG_CONFIG_MISMATCH => Self::ConfigMismatch {
                sketch: String::decode(r)?,
                field: String::decode(r)?,
            },
            TAG_INVALID_RECORD => Self::InvalidRecord {
                detail: String::decode(r)?,
            },
            TAG_INVALID_CONFIG => Self::InvalidConfig {
                detail: String::decode(r)?,
            },
            TAG_UNKNOWN_ESTIMATOR => Self::UnknownEstimator {
                name: String::decode(r)?,
            },
            TAG_UNKNOWN_STATISTIC => Self::UnknownStatistic {
                name: String::decode(r)?,
            },
            TAG_ESTIMATOR_MISMATCH => Self::EstimatorMismatch {
                estimator: String::decode(r)?,
                detail: String::decode(r)?,
            },
            // UnexpectedResponse is decoded into its own variant by detail,
            // but its `expected` field is a &'static str; carry it through
            // the generic protocol variant instead of inventing leaks.
            TAG_UNEXPECTED_RESPONSE => Self::Protocol {
                detail: format!("peer reported unexpected response ({})", String::decode(r)?),
            },
            TAG_OVERLOADED => Self::Overloaded {
                what: String::decode(r)?,
                retry_after_ms: u64::decode(r)?,
            },
            TAG_TIMEOUT => Self::Timeout {
                during: String::decode(r)?,
            },
            tag => {
                return Err(StoreError::InvalidTag {
                    what: "ServeError",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &ServeError) -> ServeError {
        let bytes = pie_store::encode_to_vec(e).unwrap();
        pie_store::decode_from_slice(&bytes).unwrap()
    }

    #[test]
    fn every_variant_roundtrips() {
        let cases = vec![
            ServeError::Protocol {
                detail: "bad".into(),
            },
            ServeError::Transport {
                detail: "refused".into(),
            },
            ServeError::Snapshot {
                detail: "truncated".into(),
            },
            ServeError::UnknownSketch { name: "s".into() },
            ServeError::SketchNotReady { name: "s".into() },
            ServeError::SketchFinalized { name: "s".into() },
            ServeError::ConfigMismatch {
                sketch: "s".into(),
                field: "trials".into(),
            },
            ServeError::InvalidRecord {
                detail: "NaN".into(),
            },
            ServeError::InvalidConfig { detail: "p".into() },
            ServeError::UnknownEstimator { name: "e".into() },
            ServeError::UnknownStatistic { name: "f".into() },
            ServeError::EstimatorMismatch {
                estimator: "e".into(),
                detail: "regime".into(),
            },
            ServeError::Overloaded {
                what: "query quota for tenant \"acme\"".into(),
                retry_after_ms: 250,
            },
            ServeError::Timeout {
                during: "reading the response".into(),
            },
        ];
        for case in cases {
            assert_eq!(roundtrip(&case), case, "{case}");
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn unknown_tag_is_typed() {
        let bytes = pie_store::encode_to_vec(&99u32).unwrap();
        assert!(matches!(
            pie_store::decode_from_slice::<ServeError>(&bytes).unwrap_err(),
            StoreError::InvalidTag {
                what: "ServeError",
                ..
            }
        ));
    }
}
