//! The multi-threaded TCP server: accept loop, per-connection threads, and
//! the request dispatcher.
//!
//! One OS thread accepts connections; each connection gets its own thread
//! running a read → dispatch → respond loop over the shared
//! [`SketchCatalog`].  Estimation runs outside all catalog locks, so slow
//! queries never block ingest, listings, or each other.
//!
//! **Malformed input never panics and never kills the server.**  Every
//! frame- or decode-level failure is answered with a typed
//! [`ServeError::Protocol`](crate::ServeError::Protocol) response; the
//! connection then keeps serving when the stream is still at a frame
//! boundary (wrong version, checksum mismatch, bad payload) and closes
//! when it cannot be (bad magic, oversized length prefix, truncation) —
//! see the [`crate::wire`] recovery contract.  Either way the accept loop
//! and every other connection are untouched.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::catalog::SketchCatalog;
use crate::wire::{read_request, write_message, Request, Response};

/// A running sketch-query server.
///
/// Binding spawns the accept loop; [`shutdown`](Server::shutdown) (or drop)
/// stops accepting and joins it.  Connections already open run to their
/// natural end (client hang-up or fatal protocol fault).
///
/// ```no_run
/// use pie_serve::{Server, ServeClient};
///
/// let server = Server::bind("127.0.0.1:0").unwrap();
/// let mut client = ServeClient::connect(server.local_addr()).unwrap();
/// println!("{} sketches", client.list_catalog().unwrap().len());
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    catalog: Arc<SketchCatalog>,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    /// Propagates socket binding failures.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let catalog = Arc::new(SketchCatalog::new());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_loop = {
            let catalog = Arc::clone(&catalog);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &catalog, &stop))
        };
        Ok(Self {
            addr,
            catalog,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The address the server is listening on (the resolved ephemeral port
    /// when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog — the in-process surface behind the wire
    /// protocol, for preloading entries without a round trip (benches,
    /// tests, embedded servers).
    #[must_use]
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// Stops accepting new connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one throwaway connection to itself.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Accepts connections until the stop flag flips, one thread per
/// connection.
fn accept_loop(listener: &TcpListener, catalog: &Arc<SketchCatalog>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let catalog = Arc::clone(catalog);
                std::thread::spawn(move || serve_connection(stream, &catalog));
            }
            // Transient accept errors (peer reset mid-handshake, fd
            // pressure): keep accepting.
            Err(_) => continue,
        }
    }
}

/// One connection's read → dispatch → respond loop.
fn serve_connection(stream: TcpStream, catalog: &SketchCatalog) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_request(&mut reader) {
            // Clean hang-up between frames.
            Ok(None) => break,
            Ok(Some(request)) => {
                let response = dispatch(request, catalog);
                if write_message(&mut writer, &response).is_err() {
                    break;
                }
            }
            Err(fault) => {
                // Answer with the typed fault whenever the socket still
                // works; survive only faults that leave the stream at a
                // frame boundary.
                let answered =
                    write_message(&mut writer, &Response::Error(fault.to_serve_error())).is_ok();
                if fault.fatal || !answered {
                    break;
                }
            }
        }
    }
}

/// Maps one request to its response; never panics on any input.
fn dispatch(request: Request, catalog: &SketchCatalog) -> Response {
    match request {
        Request::ListCatalog => Response::Catalog(catalog.list()),
        Request::LoadSnapshot { name, path } => match catalog.load_snapshot(&name, &path) {
            Ok(info) => Response::Loaded(info),
            Err(e) => Response::Error(e),
        },
        Request::IngestBatch {
            sketch,
            config,
            records,
            last,
        } => match catalog.ingest(&sketch, config, &records, last) {
            Ok((buffered_records, ready)) => Response::Ingested {
                sketch,
                buffered_records,
                ready,
            },
            Err(e) => Response::Error(e),
        },
        Request::Estimate {
            sketch,
            estimator,
            statistic,
        } => match catalog.estimate(&sketch, &estimator, &statistic) {
            Ok(report) => Response::Estimated(report),
            Err(e) => Response::Error(e),
        },
    }
}
