//! The multi-threaded TCP server: accept loop, per-connection threads, and
//! the engine-routed request dispatcher.
//!
//! One OS thread accepts connections; each connection gets its own thread
//! running a read → dispatch → respond loop over the shared
//! [`SketchCatalog`] and [`QueryEngine`].  Estimation runs outside all
//! catalog locks, so slow queries never block ingest, listings, or each
//! other — and every estimation request passes the engine first: per-tenant
//! quota, then a bounded in-flight permit, then the estimate cache.
//! Overload is answered with a typed
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded) shed, never
//! with unbounded thread pileup.
//!
//! **Malformed input never panics and never kills the server.**  Every
//! frame- or decode-level failure is answered with a typed
//! [`ServeError::Protocol`](crate::ServeError::Protocol) response; the
//! connection then keeps serving when the stream is still at a frame
//! boundary (wrong version, checksum mismatch, bad payload) and closes
//! when it cannot be (bad magic, oversized length prefix, truncation) —
//! see the [`crate::wire`] recovery contract.  Either way the accept loop
//! and every other connection are untouched.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use partial_info_estimators::{PipelineReport, Statistic};
use pie_engine::{CacheKey, EngineConfig, QueryEngine, Shed};

use crate::catalog::{map_catalog_error, SketchCatalog};
use crate::error::ServeError;
use crate::wire::{read_request, write_message, Request, Response, MAX_BATCH_QUERIES};

/// The tenant connections bill to until they send
/// [`Request::Identify`](crate::Request::Identify).
pub const DEFAULT_TENANT: &str = "anonymous";

/// A running sketch-query server.
///
/// Binding spawns the accept loop; [`shutdown`](Server::shutdown) (or drop)
/// stops accepting and joins it.  Connections already open run to their
/// natural end (client hang-up or fatal protocol fault).
///
/// ```no_run
/// use pie_serve::{Server, ServeClient};
///
/// let server = Server::bind("127.0.0.1:0").unwrap();
/// let mut client = ServeClient::connect(server.local_addr()).unwrap();
/// println!("{} sketches", client.list_catalog().unwrap().len());
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    catalog: Arc<SketchCatalog>,
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, with the default (permissive)
    /// [`EngineConfig`].
    ///
    /// # Errors
    /// Propagates socket binding failures.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(addr, EngineConfig::default())
    }

    /// [`bind`](Self::bind) with explicit engine tunables: cache capacity,
    /// in-flight bounds, and per-tenant quotas.
    ///
    /// # Errors
    /// Propagates socket binding failures.
    pub fn bind_with(addr: impl ToSocketAddrs, config: EngineConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let catalog = Arc::new(SketchCatalog::new());
        let engine = Arc::new(QueryEngine::new(config));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_loop = {
            let catalog = Arc::clone(&catalog);
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &catalog, &engine, &stop))
        };
        Ok(Self {
            addr,
            catalog,
            engine,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The address the server is listening on (the resolved ephemeral port
    /// when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog — the in-process surface behind the wire
    /// protocol, for preloading entries without a round trip (benches,
    /// tests, embedded servers).
    #[must_use]
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// The query engine fronting the catalog: estimate cache, admission
    /// control, in-flight gate, and the [`stats`](QueryEngine::stats)
    /// snapshot — for in-process observability and cache control.
    #[must_use]
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// Stops accepting new connections and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one throwaway connection to itself.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Accepts connections until the stop flag flips, one thread per
/// connection.
fn accept_loop(
    listener: &TcpListener,
    catalog: &Arc<SketchCatalog>,
    engine: &Arc<QueryEngine>,
    stop: &Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let catalog = Arc::clone(catalog);
                let engine = Arc::clone(engine);
                std::thread::spawn(move || serve_connection(stream, &catalog, &engine));
            }
            // Transient accept errors (peer reset mid-handshake, fd
            // pressure): keep accepting.
            Err(_) => continue,
        }
    }
}

/// One connection's read → dispatch → respond loop.  The tenant identity is
/// connection state: it starts at [`DEFAULT_TENANT`] and follows the last
/// `Identify` request.
fn serve_connection(stream: TcpStream, catalog: &SketchCatalog, engine: &QueryEngine) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut tenant = DEFAULT_TENANT.to_string();
    loop {
        match read_request(&mut reader) {
            // Clean hang-up between frames.
            Ok(None) => break,
            Ok(Some(request)) => {
                let response = dispatch(request, catalog, engine, &mut tenant);
                if write_message(&mut writer, &response).is_err() {
                    break;
                }
            }
            Err(fault) => {
                // Answer with the typed fault whenever the socket still
                // works; survive only faults that leave the stream at a
                // frame boundary.
                let answered =
                    write_message(&mut writer, &Response::Error(fault.to_serve_error())).is_ok();
                if fault.fatal || !answered {
                    break;
                }
            }
        }
    }
}

/// Maps one request to its response; never panics on any input.
fn dispatch(
    request: Request,
    catalog: &SketchCatalog,
    engine: &QueryEngine,
    tenant: &mut String,
) -> Response {
    match try_dispatch(request, catalog, engine, tenant) {
        Ok(response) => response,
        Err(error) => Response::Error(error),
    }
}

/// A [`Shed`] as its wire error.
fn overloaded(shed: Shed) -> ServeError {
    ServeError::Overloaded {
        what: shed.what,
        retry_after_ms: shed.retry_after_ms,
    }
}

/// The dispatch body, with `?` on the typed error paths.
fn try_dispatch(
    request: Request,
    catalog: &SketchCatalog,
    engine: &QueryEngine,
    tenant: &mut String,
) -> Result<Response, ServeError> {
    match request {
        Request::ListCatalog => Ok(Response::Catalog(catalog.list())),
        Request::Identify { tenant: name } => {
            name.clone_into(tenant);
            Ok(Response::Identified { tenant: name })
        }
        Request::LoadSnapshot { name, path } => {
            let info = catalog.load_snapshot(&name, &path)?;
            // The name may have been rebound to different data: reclaim any
            // cached reports (new lookups carry the new fingerprint anyway;
            // this keeps the entry count honest).
            engine.invalidate_sketch(&name);
            Ok(Response::Loaded(info))
        }
        Request::IngestBatch {
            sketch,
            config,
            records,
            last,
        } => {
            engine
                .admission()
                .admit_ingest(tenant, records.len() as u64)
                .map_err(overloaded)?;
            let (buffered_records, ready) = catalog.ingest(&sketch, config, &records, last)?;
            if ready {
                engine.invalidate_sketch(&sketch);
            }
            Ok(Response::Ingested {
                sketch,
                buffered_records,
                ready,
            })
        }
        Request::Estimate {
            sketch,
            estimator,
            statistic,
        } => {
            let _permit = engine.admit_query(tenant, 1).map_err(overloaded)?;
            let entry = catalog.get(&sketch)?;
            let key = CacheKey {
                sketch,
                estimator: estimator.clone(),
                statistic: statistic.clone(),
                fingerprint: entry.fingerprint(),
            };
            let report = engine.estimate_cached(key, || {
                entry
                    .estimate_named(&estimator, &statistic, Some(1))
                    .map_err(|e| map_catalog_error(&estimator, e))
            })?;
            Ok(Response::Estimated((*report).clone()))
        }
        Request::BatchEstimate { sketch, queries } => {
            if queries.is_empty() || queries.len() > MAX_BATCH_QUERIES {
                return Err(ServeError::InvalidConfig {
                    detail: format!(
                        "a batch must carry between 1 and {MAX_BATCH_QUERIES} queries, got {}",
                        queries.len()
                    ),
                });
            }
            let _permit = engine
                .admit_query(tenant, queries.len() as u64)
                .map_err(overloaded)?;
            let entry = catalog.get(&sketch)?;
            // Resolve every combination before any estimation runs, so a
            // bad name yields its precise typed error and a failed batch
            // does no work.
            for query in &queries {
                entry
                    .suite(&query.estimator)
                    .map_err(|e| map_catalog_error(&query.estimator, e))?;
                if Statistic::by_name(&query.statistic).is_none() {
                    return Err(ServeError::UnknownStatistic {
                        name: query.statistic.clone(),
                    });
                }
            }
            let fingerprint = entry.fingerprint();
            let key_of = |query: &crate::wire::BatchQuery| CacheKey {
                sketch: sketch.clone(),
                estimator: query.estimator.clone(),
                statistic: query.statistic.clone(),
                fingerprint,
            };
            // Serve what the cache holds; answer every remaining
            // combination from ONE shared replay over the samples.
            let mut reports: Vec<Option<Arc<PipelineReport>>> = queries
                .iter()
                .map(|query| engine.cache().get(&key_of(query)))
                .collect();
            let missing: Vec<usize> = (0..queries.len())
                .filter(|&i| reports[i].is_none())
                .collect();
            if !missing.is_empty() {
                let to_compute: Vec<(&str, &str)> = missing
                    .iter()
                    .map(|&i| (queries[i].estimator.as_str(), queries[i].statistic.as_str()))
                    .collect();
                let computed = entry
                    .estimate_batch_named(&to_compute, Some(1))
                    // Names were pre-validated; only pipeline-level failures
                    // remain, which the mapper turns into InvalidConfig.
                    .map_err(|e| map_catalog_error("<batch>", e))?;
                for (&i, report) in missing.iter().zip(computed) {
                    let report = Arc::new(report);
                    engine
                        .cache()
                        .insert(key_of(&queries[i]), Arc::clone(&report));
                    reports[i] = Some(report);
                }
            }
            Ok(Response::BatchEstimated(
                reports
                    .into_iter()
                    .map(|report| (*report.expect("every slot filled")).clone())
                    .collect(),
            ))
        }
        Request::Stats => Ok(Response::Stats(engine.stats())),
    }
}
