//! The multiplexed TCP server: one readiness-polled event loop over every
//! connection, plus a small worker pool that executes dispatches.
//!
//! A single event-loop thread owns the listener and all connection sockets
//! (nonblocking, watched through [`crate::poll`]).  It accepts, reads,
//! frames (via the incremental [`pie_store::frame::FrameDecoder`]),
//! dispatches at most one request per connection at a time to the worker
//! pool, and flushes responses — so **one process holds thousands of open
//! connections on a handful of threads** instead of a thread apiece.
//! Workers run the same dispatch body as ever: every estimation request
//! passes the engine first — per-tenant quota, then a bounded in-flight
//! permit, then the estimate cache.  Overload is answered with a typed
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded) shed, never
//! with unbounded thread pileup; slow queries never block ingest,
//! listings, or other connections.
//!
//! **Malformed input never panics and never kills the server.**  Every
//! frame- or decode-level failure is answered with a typed
//! [`ServeError::Protocol`](crate::ServeError::Protocol) response at its
//! exact position in the response order; the connection then keeps serving
//! when the stream is still at a frame boundary (wrong version, checksum
//! mismatch, bad payload) and closes once queued responses flush when it
//! cannot be (bad magic, oversized length prefix, truncation) — see the
//! [`crate::wire`] recovery contract.  Either way the event loop and every
//! other connection are untouched.
//!
//! Shutdown is graceful and complete: [`Server::shutdown`] (or drop, or a
//! [`ShutdownHandle`] from another thread) stops accepting, stops reading,
//! finishes every dispatched request, flushes every queued response
//! (bounded by a drain deadline), and joins the event loop and all
//! workers — no leaked threads.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use partial_info_estimators::{
    CatalogEntry, PipelineObserver, PipelineReport, StageNanos, Statistic,
};
use pie_engine::{CacheKey, EngineConfig, QueryEngine, Shed};
use pie_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, SlowQueryLog, SlowQueryRecord,
    SpanRecord, TraceContext, TraceRing,
};

use crate::catalog::{map_catalog_error, SketchCatalog};
use crate::conn::{Connection, Work};
use crate::error::ServeError;
use crate::poll::{fd_of, Event, Poller};
use crate::wire::{write_message, Request, Response, MAX_BATCH_QUERIES};

/// The tenant connections bill to until they send
/// [`Request::Identify`](crate::Request::Identify).
pub const DEFAULT_TENANT: &str = "anonymous";

/// How long a graceful shutdown waits for in-flight dispatches to finish
/// and queued responses to flush before closing sockets anyway.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Poll timeout while serving: pure liveness backstop (every state change
/// arrives as readiness or a waker datagram).
const POLL_MS: u32 = 200;

/// Poll timeout while draining: short, so the drain conditions re-check
/// promptly.
const DRAIN_POLL_MS: u32 = 10;

/// Observability tunables taken by [`Server::bind_with_obs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch: `false` turns every metric, span, and slow-query
    /// record off (the wire `Metrics`/`QueryTrace` requests then answer
    /// with empty snapshots).
    pub enabled: bool,
    /// How many recent spans the in-memory trace ring retains.
    pub trace_ring_capacity: usize,
    /// Requests slower than this end-to-end land in the slow-query log.
    pub slow_query_threshold: Duration,
    /// How many slow-query records are retained.
    pub slow_query_log_capacity: usize,
}

impl Default for ObsConfig {
    /// Observability on: a 4096-span trace ring and a 128-entry slow-query
    /// log with a 250 ms threshold.
    fn default() -> Self {
        Self {
            enabled: true,
            trace_ring_capacity: 4096,
            slow_query_threshold: Duration::from_millis(250),
            slow_query_log_capacity: 128,
        }
    }
}

impl ObsConfig {
    /// Everything off — the baseline for overhead measurements.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// The server's observability plane: the metrics registry, the span ring,
/// the slow-query log, and the span-id source.  One per server, shared by
/// the event loop and every worker.
pub(crate) struct ServerObs {
    enabled: bool,
    registry: MetricsRegistry,
    traces: TraceRing,
    slow: SlowQueryLog,
    next_span: AtomicU64,
    start: Instant,
    /// This process's span identity (the listen address).
    node: String,
    // Pre-created handles for per-request hot paths.
    requests_total: Arc<Counter>,
    request_nanos: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    queue_depth_hwm: Arc<Gauge>,
}

impl ServerObs {
    fn new(config: &ObsConfig, node: String) -> Self {
        let registry = MetricsRegistry::new();
        let requests_total = registry.counter("requests_total");
        let request_nanos = registry.histogram("request_nanos");
        let queue_depth = registry.gauge("worker_queue_depth");
        let queue_depth_hwm = registry.gauge("worker_queue_depth_hwm");
        Self {
            enabled: config.enabled,
            registry,
            traces: TraceRing::new(config.trace_ring_capacity),
            slow: SlowQueryLog::new(
                config.slow_query_log_capacity,
                u64::try_from(config.slow_query_threshold.as_nanos()).unwrap_or(u64::MAX),
            ),
            next_span: AtomicU64::new(0),
            start: Instant::now(),
            node,
            requests_total,
            request_nanos,
            queue_depth,
            queue_depth_hwm,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one per-stage span for a traced request, ending now; the
    /// incoming wire context's span is the parent.  No-op when disabled or
    /// untraced.
    pub(crate) fn span(&self, trace: Option<&TraceContext>, stage: &str, duration_nanos: u64) {
        if !self.enabled {
            return;
        }
        let Some(ctx) = trace else { return };
        self.traces.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: self.next_span.fetch_add(1, Ordering::Relaxed) + 1,
            parent_span_id: ctx.span_id,
            node: self.node.clone(),
            stage: stage.to_string(),
            start_nanos: self.now_nanos().saturating_sub(duration_nanos),
            duration_nanos,
        });
    }

    /// The full registry snapshot (empty when disabled).
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        // A disabled plane answers with an *empty* snapshot, not the
        // pre-created zero-valued handles: clients need no mode detection.
        if !self.enabled {
            return MetricsSnapshot::default();
        }
        self.registry.snapshot()
    }

    /// Recent spans of `trace_id` from the local ring.
    pub(crate) fn query_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.traces.query(trace_id)
    }
}

/// One dispatched request, owned by a worker while it runs.
struct Job {
    conn: u64,
    request: Request,
    tenant: String,
    /// The wire-propagated trace context, if the frame carried one.
    trace: Option<TraceContext>,
    /// Decode time, folded into the request's end-to-end duration.
    decode_nanos: u64,
    /// When the event loop queued the job (queue wait counts toward the
    /// end-to-end duration).
    queued: Instant,
}

/// One finished dispatch on its way back to the event loop.
struct Done {
    conn: u64,
    tenant: String,
    /// The pre-encoded response frame (empty on the unreachable encode
    /// failure, which the connection treats as fatal).
    frame: Vec<u8>,
    /// The request's trace, carried through so the flush of its response
    /// can be attributed (`write_queue` span).
    trace: Option<TraceContext>,
}

/// State shared between the [`Server`] handle, [`ShutdownHandle`]s, the
/// event loop, and the workers.
struct Shared {
    stop: AtomicBool,
    /// A self-connected UDP socket: anyone pokes the event loop out of its
    /// poll by sending one byte to it; the loop drains it each wake-up.
    waker: UdpSocket,
}

impl Shared {
    fn wake(&self) {
        let _ = self.waker.send(&[1]);
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
    }
}

/// A cloneable handle that triggers the server's graceful shutdown from
/// any thread (stop accepting, drain in-flight work, flush responses).
/// Joining the server's threads remains [`Server::shutdown`]'s job — a
/// handle only *requests* the stop, so it can be signalled from within a
/// serving callback without deadlocking.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown; returns immediately.
    pub fn shutdown(&self) {
        self.shared.request_stop();
    }
}

/// A running sketch-query server.
///
/// Binding spawns the event loop and worker pool;
/// [`shutdown`](Server::shutdown) (or drop) stops accepting, drains
/// in-flight requests, flushes queued responses, and joins every thread.
///
/// ```no_run
/// use pie_serve::{Server, ServeClient};
///
/// let server = Server::bind("127.0.0.1:0").unwrap();
/// let mut client = ServeClient::connect(server.local_addr()).unwrap();
/// println!("{} sketches", client.list_catalog().unwrap().len());
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    catalog: Arc<SketchCatalog>,
    engine: Arc<QueryEngine>,
    obs: Arc<ServerObs>,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, with the default (permissive)
    /// [`EngineConfig`].
    ///
    /// # Errors
    /// Propagates socket binding failures.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(addr, EngineConfig::default())
    }

    /// [`bind`](Self::bind) with explicit engine tunables: cache capacity,
    /// in-flight bounds, and per-tenant quotas.  Observability runs at its
    /// defaults ([`ObsConfig::default`]).
    ///
    /// # Errors
    /// Propagates socket binding failures.
    pub fn bind_with(addr: impl ToSocketAddrs, config: EngineConfig) -> io::Result<Self> {
        Self::bind_with_obs(addr, config, ObsConfig::default())
    }

    /// [`bind_with`](Self::bind_with) with explicit observability tunables
    /// — pass [`ObsConfig::disabled`] for an uninstrumented baseline.
    ///
    /// # Errors
    /// Propagates socket binding failures.
    pub fn bind_with_obs(
        addr: impl ToSocketAddrs,
        config: EngineConfig,
        obs_config: ObsConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let catalog = Arc::new(SketchCatalog::new());
        let engine = Arc::new(QueryEngine::new(config));
        let obs = Arc::new(ServerObs::new(&obs_config, addr.to_string()));

        let waker = UdpSocket::bind("127.0.0.1:0")?;
        waker.connect(waker.local_addr()?)?;
        waker.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            waker,
        });

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));

        // Workers can block legitimately (the engine's in-flight gate
        // parks queued queries), so keep a few more than the core count —
        // a parked worker must never be the only one left to release it.
        let worker_count = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(8, 32);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let jobs_rx = Arc::clone(&jobs_rx);
            let completions = Arc::clone(&completions);
            let shared = Arc::clone(&shared);
            let catalog = Arc::clone(&catalog);
            let engine = Arc::clone(&engine);
            let obs = Arc::clone(&obs);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pie-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&jobs_rx, &completions, &shared, &catalog, &engine, &obs)
                    })?,
            );
        }

        let poller = Poller::new()?;
        let event_loop = {
            let shared = Arc::clone(&shared);
            let obs = Arc::clone(&obs);
            std::thread::Builder::new()
                .name("pie-serve-events".to_string())
                .spawn(move || {
                    event_loop(listener, poller, &shared, &jobs_tx, &completions, &obs)
                })?
        };

        Ok(Self {
            addr,
            catalog,
            engine,
            obs,
            shared,
            event_loop: Some(event_loop),
            workers,
        })
    }

    /// The address the server is listening on (the resolved ephemeral port
    /// when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog — the in-process surface behind the wire
    /// protocol, for preloading entries without a round trip (benches,
    /// tests, embedded servers).
    #[must_use]
    pub fn catalog(&self) -> &Arc<SketchCatalog> {
        &self.catalog
    }

    /// The query engine fronting the catalog: estimate cache, admission
    /// control, in-flight gate, and the [`stats`](QueryEngine::stats)
    /// snapshot — for in-process observability and cache control.
    #[must_use]
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// The current in-process metrics snapshot — what the wire `Metrics`
    /// request returns, without a round trip.  Empty when observability
    /// was disabled at bind.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Recent spans recorded for `trace_id` — what the wire `QueryTrace`
    /// request returns, without a round trip.
    #[must_use]
    pub fn trace_spans(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.obs.query_trace(trace_id)
    }

    /// Slow-query records retained by this server (requests slower than
    /// the configured threshold), oldest first.
    #[must_use]
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.obs.slow.entries()
    }

    /// A cloneable handle that can trigger this server's shutdown from
    /// another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Gracefully shuts down: stops accepting, drains dispatched requests,
    /// flushes queued responses (bounded by a drain deadline), and joins
    /// the event loop and every worker.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.request_stop();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
        // The event loop dropped the job sender on exit, so the workers'
        // recv() fails and they return.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Executes dispatches until the job channel closes (event-loop exit).
fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    completions: &Mutex<Vec<Done>>,
    shared: &Shared,
    catalog: &SketchCatalog,
    engine: &QueryEngine,
    obs: &ServerObs,
) {
    loop {
        // Holding the lock while waiting serializes job *pickup*, not job
        // execution — the receiver is released before dispatch runs.
        let job = {
            let guard = jobs.lock().expect("job queue lock poisoned");
            guard.recv()
        };
        let Ok(job) = job else { return };
        if obs.enabled() {
            obs.queue_depth.sub(1);
        }
        let kind = request_kind(&job.request);
        let sketch = request_sketch(&job.request).map(str::to_string);
        engine.note_request(kind);
        let trace = job.trace;
        let mut tenant = job.tenant;
        let response = dispatch(
            job.request,
            catalog,
            engine,
            &mut tenant,
            obs,
            trace.as_ref(),
        );
        let encode_started = Instant::now();
        let mut frame = Vec::new();
        if write_message(&mut frame, &response).is_err() {
            frame.clear();
        }
        if obs.enabled() {
            obs.span(
                trace.as_ref(),
                "encode",
                u64::try_from(encode_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            // End-to-end service duration: decode + queue wait + dispatch
            // + encode (the response flush is attributed separately).
            let total = job
                .decode_nanos
                .saturating_add(u64::try_from(job.queued.elapsed().as_nanos()).unwrap_or(u64::MAX));
            obs.requests_total.inc();
            obs.registry
                .counter(&format!("requests_{kind}_total"))
                .inc();
            obs.request_nanos.record(total);
            obs.slow.observe(SlowQueryRecord {
                trace_id: trace.map_or(0, |t| t.trace_id),
                request: kind.to_string(),
                sketch: sketch.unwrap_or_default(),
                duration_nanos: total,
            });
        }
        completions
            .lock()
            .expect("completion queue lock poisoned")
            .push(Done {
                conn: job.conn,
                tenant,
                frame,
                trace,
            });
        shared.wake();
    }
}

/// The request's stable metrics name.
fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::ListCatalog => "list_catalog",
        Request::Identify { .. } => "identify",
        Request::LoadSnapshot { .. } => "load_snapshot",
        Request::PutSnapshot { .. } => "put_snapshot",
        Request::Ping => "ping",
        Request::IngestBatch { .. } => "ingest_batch",
        Request::Estimate { .. } => "estimate",
        Request::BatchEstimate { .. } => "batch_estimate",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::QueryTrace { .. } => "query_trace",
    }
}

/// The sketch a request addresses, when it addresses one (slow-query log).
fn request_sketch(request: &Request) -> Option<&str> {
    match request {
        Request::Estimate { sketch, .. }
        | Request::BatchEstimate { sketch, .. }
        | Request::IngestBatch { sketch, .. } => Some(sketch),
        Request::LoadSnapshot { name, .. } | Request::PutSnapshot { name, .. } => Some(name),
        _ => None,
    }
}

/// Poller token for the completion waker (connection ids count up from 0
/// and can never collide with the top of the `u64` range).
const WAKER_TOKEN: u64 = u64::MAX;
/// Poller token for the accept listener.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// The readiness-polled heart of the server: accepts, reads, frames,
/// schedules dispatches, and flushes responses for every connection.
///
/// The loop is O(active), not O(connections): the [`Poller`] wakes it with
/// only the sockets that are ready, and each iteration services only the
/// *dirty* set — connections an event or completion actually touched.  A
/// thousand idle connections cost nothing per wakeup; interest
/// re-registration happens only when a connection's wants change.
fn event_loop(
    listener: TcpListener,
    mut poller: Poller,
    shared: &Arc<Shared>,
    jobs: &Sender<Job>,
    completions: &Mutex<Vec<Done>>,
    obs: &ServerObs,
) {
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;
    // Connections touched since they were last serviced; deduped each pass.
    let mut dirty: Vec<u64> = Vec::new();
    let mut events: Vec<Event> = Vec::new();

    // Event-loop metric handles, created once (recording is guarded by the
    // master switch, so a disabled server pays nothing per wakeup).
    let epoll_wakeups = obs.registry.counter("epoll_wakeups_total");
    let epoll_events = obs.registry.counter("epoll_events_total");
    let dirty_serviced = obs.registry.counter("dirty_connections_serviced_total");
    let dirty_hwm = obs.registry.gauge("dirty_set_hwm");
    let conns_accepted = obs.registry.counter("conns_accepted_total");
    let conns_closed = obs.registry.counter("conns_closed_total");
    let conn_write_hwm = obs.registry.gauge("conn_write_queue_hwm_bytes");
    let flush_nanos = obs.registry.histogram("write_queue_flush_nanos");
    let decode_nanos_hist = obs.registry.histogram("decode_nanos");

    // A waker registration failure only degrades completion latency to the
    // poll timeout; a listener failure is caught by the accept tests.
    let _ = poller.update(fd_of(&shared.waker), WAKER_TOKEN, true, false);
    if let Some(l) = &listener {
        let _ = poller.update(fd_of(l), LISTENER_TOKEN, true, false);
    }

    loop {
        // 1. Absorb finished dispatches (responses + updated tenants).
        for done in completions
            .lock()
            .expect("completion queue lock poisoned")
            .drain(..)
        {
            // A missing id means the connection died while its request
            // ran; the response has no one to go to.
            if let Some(conn) = conns.get_mut(&done.conn) {
                conn.complete(done.tenant, done.frame, done.trace);
                dirty.push(done.conn);
            }
        }

        // 2. Shutdown transition: stop accepting, stop reading, then wait
        // for quiescence (or the drain deadline).
        if shared.stop.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_TIMEOUT);
            if let Some(l) = listener.take() {
                poller.remove(fd_of(&l));
            }
            for (&id, conn) in &mut conns {
                conn.stop_reading();
                dirty.push(id);
            }
        }

        // 3. Service the dirty set: answer in-stream faults in-line, hand
        // at most one request per connection to the workers, flush eagerly
        // (most responses fit the socket buffer, so the common case never
        // waits for a writability event), reap the finished, and re-declare
        // poller interest where it changed.
        dirty.sort_unstable();
        dirty.dedup();
        if obs.enabled() && !dirty.is_empty() {
            dirty_serviced.add(dirty.len() as u64);
            dirty_hwm.record_max(dirty.len() as u64);
        }
        for id in dirty.drain(..) {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            while let Some(work) = conn.next_work() {
                match work {
                    Work::Request {
                        request,
                        trace,
                        decode_nanos,
                    } => {
                        if obs.enabled() {
                            decode_nanos_hist.record(decode_nanos);
                            obs.span(trace.as_ref(), "decode", decode_nanos);
                        }
                        let sent = jobs.send(Job {
                            conn: id,
                            request,
                            tenant: conn.tenant().to_string(),
                            trace,
                            decode_nanos,
                            queued: Instant::now(),
                        });
                        if sent.is_err() {
                            // Workers are gone (only during teardown).
                            return;
                        }
                        if obs.enabled() {
                            obs.queue_depth.add(1);
                            obs.queue_depth_hwm.record_max(obs.queue_depth.get());
                        }
                        break;
                    }
                    Work::Fault { error, fatal } => {
                        conn.enqueue_response(&Response::Error(error));
                        if fatal {
                            conn.stop_reading();
                        }
                    }
                }
            }
            conn.handle_writable();
            // Always drain the flush record (it accumulates in the
            // connection either way); account for it only when enabled.
            let flushed = conn.take_flushed();
            if obs.enabled() {
                for (trace, nanos) in flushed {
                    flush_nanos.record(nanos);
                    obs.span(trace.as_ref(), "write_queue", nanos);
                }
                conn_write_hwm.record_max(conn.write_hwm_bytes() as u64);
            }
            if conn.finished() {
                poller.remove(conn.fd());
                conns.remove(&id);
                if obs.enabled() {
                    conns_closed.inc();
                }
            } else if poller
                .update(conn.fd(), id, conn.wants_read(), conn.wants_write())
                .is_err()
            {
                // A connection the kernel refuses to watch can never be
                // served again; drop it rather than strand it.
                poller.remove(conn.fd());
                conns.remove(&id);
                if obs.enabled() {
                    conns_closed.inc();
                }
            }
        }

        if let Some(deadline) = drain_deadline {
            let quiescent = conns.values().all(Connection::quiescent);
            if quiescent || Instant::now() >= deadline {
                return;
            }
        }

        // 4. Wait for readiness (only ready sockets come back).
        let timeout = if drain_deadline.is_some() {
            DRAIN_POLL_MS
        } else {
            POLL_MS
        };
        events.clear();
        match poller.wait(timeout) {
            Ok(ready) => {
                events.extend_from_slice(ready);
                if obs.enabled() {
                    epoll_wakeups.inc();
                    epoll_events.add(events.len() as u64);
                }
            }
            Err(_) => {
                // Nothing sane to do with a failed wait but back off
                // briefly and retry.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        }

        // 5. Demultiplex: handle I/O now, queue the touched connections
        // for servicing at the top of the next iteration (which runs
        // before the next wait, so changed interest is always re-declared
        // ahead of sleeping — no level-triggered spin).
        for event in &events {
            match event.token {
                WAKER_TOKEN => {
                    let mut sink = [0u8; 64];
                    while shared.waker.recv(&mut sink).is_ok() {}
                }
                LISTENER_TOKEN => {
                    if let Some(l) = &listener {
                        let accepted = accept_burst(l, &mut conns, &mut next_id, &mut poller);
                        if obs.enabled() && accepted > 0 {
                            conns_accepted.add(accepted);
                        }
                    }
                }
                id => {
                    if let Some(conn) = conns.get_mut(&id) {
                        if event.readable {
                            conn.handle_readable();
                        }
                        if event.writable {
                            conn.handle_writable();
                        }
                        dirty.push(id);
                    }
                }
            }
        }
    }
}

/// Accepts every connection currently pending on the listener and
/// registers each with the poller for reads; returns how many were
/// adopted.
fn accept_burst(
    listener: &TcpListener,
    conns: &mut HashMap<u64, Connection>,
    next_id: &mut u64,
    poller: &mut Poller,
) -> u64 {
    let mut accepted = 0;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Ok(conn) = Connection::new(stream) {
                    let id = *next_id;
                    *next_id += 1;
                    if poller.update(conn.fd(), id, true, false).is_ok() {
                        conns.insert(id, conn);
                        accepted += 1;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return accepted,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept errors (peer reset mid-handshake, fd
            // pressure): keep accepting at the next readiness event.
            Err(_) => return accepted,
        }
    }
}

/// Maps one request to its response; never panics on any input.
fn dispatch(
    request: Request,
    catalog: &SketchCatalog,
    engine: &QueryEngine,
    tenant: &mut String,
    obs: &ServerObs,
    trace: Option<&TraceContext>,
) -> Response {
    match try_dispatch(request, catalog, engine, tenant, obs, trace) {
        Ok(response) => response,
        Err(error) => {
            if obs.enabled() {
                if let ServeError::Overloaded { what, .. } = &error {
                    obs.registry.counter(shed_reason_counter(what)).inc();
                }
            }
            Response::Error(error)
        }
    }
}

/// Classifies an admission-control shed into its reason counter, from the
/// engine's `Shed::what` strings.
fn shed_reason_counter(what: &str) -> &'static str {
    if what.starts_with("query quota") {
        "shed_query_quota_total"
    } else if what.starts_with("ingest quota") {
        "shed_ingest_quota_total"
    } else {
        "shed_inflight_queue_total"
    }
}

/// A [`Shed`] as its wire error.
fn overloaded(shed: Shed) -> ServeError {
    ServeError::Overloaded {
        what: shed.what,
        retry_after_ms: shed.retry_after_ms,
    }
}

/// Saturating nanoseconds since `from`.
fn nanos_since(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The dispatch body, with `?` on the typed error paths.
fn try_dispatch(
    request: Request,
    catalog: &SketchCatalog,
    engine: &QueryEngine,
    tenant: &mut String,
    obs: &ServerObs,
    trace: Option<&TraceContext>,
) -> Result<Response, ServeError> {
    match request {
        Request::ListCatalog => Ok(Response::Catalog(catalog.list())),
        Request::Identify { tenant: name } => {
            name.clone_into(tenant);
            Ok(Response::Identified { tenant: name })
        }
        Request::LoadSnapshot { name, path } => {
            let info = catalog.load_snapshot(&name, &path)?;
            // The name may have been rebound to different data: reclaim any
            // cached reports (new lookups carry the new fingerprint anyway;
            // this keeps the entry count honest).
            engine.invalidate_sketch(&name);
            Ok(Response::Loaded(info))
        }
        Request::PutSnapshot { name, snapshot } => {
            // The in-band twin of `LoadSnapshot`: the entry arrives as
            // encoded bytes (the cluster router's replication path) instead
            // of a server-side file path.
            let entry: CatalogEntry =
                pie_store::decode_from_slice(&snapshot).map_err(|e| ServeError::Snapshot {
                    detail: e.to_string(),
                })?;
            let info = catalog.insert(name.clone(), entry);
            engine.invalidate_sketch(&name);
            Ok(Response::Loaded(info))
        }
        Request::Ping => Ok(Response::Pong),
        Request::IngestBatch {
            sketch,
            config,
            records,
            last,
        } => {
            let admit_started = Instant::now();
            engine
                .admission()
                .admit_ingest(tenant, records.len() as u64)
                .map_err(overloaded)?;
            obs.span(trace, "admission", nanos_since(admit_started));
            let (buffered_records, ready) = catalog.ingest(&sketch, config, &records, last)?;
            if ready {
                engine.invalidate_sketch(&sketch);
            }
            Ok(Response::Ingested {
                sketch,
                buffered_records,
                ready,
            })
        }
        Request::Estimate {
            sketch,
            estimator,
            statistic,
        } => {
            let admit_started = Instant::now();
            let _permit = engine.admit_query(tenant, 1).map_err(overloaded)?;
            obs.span(trace, "admission", nanos_since(admit_started));
            let entry = catalog.get(&sketch)?;
            let key = CacheKey {
                sketch,
                estimator: estimator.clone(),
                statistic: statistic.clone(),
                fingerprint: entry.fingerprint(),
            };
            // Stage attribution: the closure runs only on a cache miss; its
            // observer splits the compute into trial replay vs estimator
            // batch, and `probe − compute` is the pure cache overhead
            // (lookup, and on a miss the insert incl. any eviction).
            let stages = Arc::new(StageNanos::new());
            let compute_nanos = std::cell::Cell::new(0u64);
            let probe_started = Instant::now();
            let report = engine.estimate_cached(key, || {
                let compute_started = Instant::now();
                let out = entry
                    .estimate_named_observed(
                        &estimator,
                        &statistic,
                        Some(1),
                        PipelineObserver::stages(&stages),
                    )
                    .map_err(|e| map_catalog_error(&estimator, e));
                compute_nanos.set(nanos_since(compute_started));
                out
            })?;
            if obs.enabled() {
                let probe = nanos_since(probe_started);
                let compute = compute_nanos.get();
                let overhead = probe.saturating_sub(compute);
                obs.span(trace, "cache_probe", overhead);
                if compute == 0 {
                    obs.registry.histogram("cache_hit_nanos").record(overhead);
                } else {
                    obs.registry.histogram("cache_miss_nanos").record(overhead);
                    obs.span(trace, "trial_replay", stages.trial_replay_nanos());
                    obs.span(trace, "estimator_batch", stages.estimator_batch_nanos());
                }
            }
            Ok(Response::Estimated((*report).clone()))
        }
        Request::BatchEstimate { sketch, queries } => {
            if queries.is_empty() || queries.len() > MAX_BATCH_QUERIES {
                return Err(ServeError::InvalidConfig {
                    detail: format!(
                        "a batch must carry between 1 and {MAX_BATCH_QUERIES} queries, got {}",
                        queries.len()
                    ),
                });
            }
            let admit_started = Instant::now();
            let _permit = engine
                .admit_query(tenant, queries.len() as u64)
                .map_err(overloaded)?;
            obs.span(trace, "admission", nanos_since(admit_started));
            let entry = catalog.get(&sketch)?;
            // Resolve every combination before any estimation runs, so a
            // bad name yields its precise typed error and a failed batch
            // does no work.
            for query in &queries {
                entry
                    .suite(&query.estimator)
                    .map_err(|e| map_catalog_error(&query.estimator, e))?;
                if Statistic::by_name(&query.statistic).is_none() {
                    return Err(ServeError::UnknownStatistic {
                        name: query.statistic.clone(),
                    });
                }
            }
            let fingerprint = entry.fingerprint();
            let key_of = |query: &crate::wire::BatchQuery| CacheKey {
                sketch: sketch.clone(),
                estimator: query.estimator.clone(),
                statistic: query.statistic.clone(),
                fingerprint,
            };
            // Serve what the cache holds; answer every remaining
            // combination from ONE shared replay over the samples.
            let probe_started = Instant::now();
            let mut reports: Vec<Option<Arc<PipelineReport>>> = queries
                .iter()
                .map(|query| engine.cache().get(&key_of(query)))
                .collect();
            obs.span(trace, "cache_probe", nanos_since(probe_started));
            let missing: Vec<usize> = (0..queries.len())
                .filter(|&i| reports[i].is_none())
                .collect();
            if !missing.is_empty() {
                let to_compute: Vec<(&str, &str)> = missing
                    .iter()
                    .map(|&i| (queries[i].estimator.as_str(), queries[i].statistic.as_str()))
                    .collect();
                let stages = Arc::new(StageNanos::new());
                let computed = entry
                    .estimate_batch_named_observed(
                        &to_compute,
                        Some(1),
                        PipelineObserver::stages(&stages),
                    )
                    // Names were pre-validated; only pipeline-level failures
                    // remain, which the mapper turns into InvalidConfig.
                    .map_err(|e| map_catalog_error("<batch>", e))?;
                obs.span(trace, "trial_replay", stages.trial_replay_nanos());
                obs.span(trace, "estimator_batch", stages.estimator_batch_nanos());
                for (&i, report) in missing.iter().zip(computed) {
                    let report = Arc::new(report);
                    engine
                        .cache()
                        .insert(key_of(&queries[i]), Arc::clone(&report));
                    reports[i] = Some(report);
                }
            }
            Ok(Response::BatchEstimated(
                reports
                    .into_iter()
                    .map(|report| (*report.expect("every slot filled")).clone())
                    .collect(),
            ))
        }
        Request::Stats => Ok(Response::Stats(engine.stats())),
        Request::Metrics => Ok(Response::Metrics(obs.snapshot())),
        Request::QueryTrace { trace_id } => Ok(Response::Traces(obs.query_trace(trace_id))),
    }
}
