//! The blocking client library for the sketch-query wire protocol.
//!
//! [`ServeClient`] speaks one request/response exchange at a time over a
//! plain [`TcpStream`] — the shape a query fan-out wants (one client per
//! worker thread), with no async runtime.  Every failure mode is a typed
//! [`ServeError`]: transport failures, protocol violations, and the
//! server's own typed refusals all arrive through the same error type.
//!
//! # Retry semantics
//!
//! A [`RetryPolicy`] adds bounded retry-with-backoff in exactly two places
//! where retrying is known safe:
//!
//! * **connect** ([`ServeClient::connect_with_retry`]) — the server may not
//!   be listening yet;
//! * **[`ServeError::Overloaded`] responses** — an admission-control shed
//!   means the request was *not executed*, so re-sending it cannot
//!   double-apply anything (the client honors the server's
//!   `retry_after_ms` hint when it is longer than the backoff step).
//!
//! Transport and protocol faults are **not** retried: mid-exchange, whether
//! the server executed the request is unknowable, and a blind re-send could
//! double-ingest a batch.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use partial_info_estimators::PipelineReport;
use pie_engine::EngineStatsReport;

use crate::error::ServeError;
use crate::wire::{
    read_response, write_message, BatchQuery, IngestRecord, Request, Response, SketchConfig,
    SketchInfo,
};

/// The acknowledgement of one ingest batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestAck {
    /// The sketch the batch was appended to.
    pub sketch: String,
    /// Records buffered server-side after this batch (0 once finalized).
    pub buffered_records: u64,
    /// Whether the sketch is now finalized and answering queries.
    pub ready: bool,
}

/// Bounded retry-with-backoff for the two known-safe retry points (see the
/// [module docs](self)).  The default policy never retries, preserving the
/// one-exchange-per-call behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any one sleep (also caps the server's
    /// `retry_after_ms` hint).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 1,
            base_backoff: Duration::from_millis(0),
            max_backoff: Duration::from_millis(0),
        }
    }
}

impl RetryPolicy {
    /// A sensible bounded policy: `attempts` total tries, 10 ms initial
    /// backoff doubling up to 500 ms.
    #[must_use]
    pub fn bounded(attempts: u32) -> Self {
        Self {
            attempts: attempts.max(1),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }

    /// The sleep before retry number `retry` (0-based), before the hint.
    fn backoff(&self, retry: u32) -> Duration {
        let scaled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        scaled.min(self.max_backoff)
    }
}

/// A blocking connection to a [`Server`](crate::Server).
///
/// ```no_run
/// use pie_serve::ServeClient;
///
/// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
/// let report = client
///     .estimate("traffic", "max_weighted", "max_dominance")
///     .unwrap();
/// println!("{}", report.render());
/// ```
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry: RetryPolicy,
}

impl ServeClient {
    /// Connects to a server.
    ///
    /// # Errors
    /// [`ServeError::Transport`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::connect_with_retry(addr, RetryPolicy::default())
    }

    /// Connects, retrying refused/failed connection attempts under
    /// `policy`, and installs the same policy for
    /// [`Overloaded`](ServeError::Overloaded)-response retries on every
    /// subsequent call.
    ///
    /// # Errors
    /// [`ServeError::Transport`] once the attempts are exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<Self, ServeError> {
        let mut retry = 0u32;
        let stream = loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(e) if retry + 1 < policy.attempts.max(1) => {
                    std::thread::sleep(policy.backoff(retry));
                    retry += 1;
                    let _ = e;
                }
                Err(e) => return Err(ServeError::transport(&e)),
            }
        };
        let read_half = stream.try_clone().map_err(|e| ServeError::transport(&e))?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            retry: policy,
        })
    }

    /// Replaces the retry policy used for
    /// [`Overloaded`](ServeError::Overloaded)-response retries.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// One request/response exchange on the wire.
    fn exchange(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_message(&mut self.writer, request).map_err(|e| ServeError::protocol(&e))?;
        match read_response(&mut self.reader) {
            Ok(Some(Response::Error(error))) => Err(error),
            Ok(Some(response)) => Ok(response),
            Ok(None) => Err(ServeError::Transport {
                detail: "server closed the connection".to_string(),
            }),
            Err(fault) => Err(fault.to_serve_error()),
        }
    }

    /// One logical call: exchanges, retrying only typed
    /// [`Overloaded`](ServeError::Overloaded) sheds (a shed request was not
    /// executed, so any request type is safe to re-send), sleeping the
    /// longer of the backoff step and the server's hint, capped at
    /// `max_backoff`.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut retry = 0u32;
        loop {
            match self.exchange(request) {
                Err(ServeError::Overloaded {
                    what,
                    retry_after_ms,
                }) => {
                    if retry + 1 >= self.retry.attempts.max(1) {
                        return Err(ServeError::Overloaded {
                            what,
                            retry_after_ms,
                        });
                    }
                    let hint = Duration::from_millis(retry_after_ms).min(self.retry.max_backoff);
                    std::thread::sleep(self.retry.backoff(retry).max(hint));
                    retry += 1;
                }
                other => return other,
            }
        }
    }

    /// Lists every catalog entry, sorted by name.
    ///
    /// # Errors
    /// Transport/protocol failures or the server's typed refusal.
    pub fn list_catalog(&mut self) -> Result<Vec<SketchInfo>, ServeError> {
        match self.call(&Request::ListCatalog)? {
            Response::Catalog(entries) => Ok(entries),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Catalog",
            }),
        }
    }

    /// Names the tenant this connection's subsequent requests bill to
    /// (quota buckets and `Stats` counters).
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn identify(&mut self, tenant: impl Into<String>) -> Result<String, ServeError> {
        let request = Request::Identify {
            tenant: tenant.into(),
        };
        match self.call(&request)? {
            Response::Identified { tenant } => Ok(tenant),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Identified",
            }),
        }
    }

    /// Asks the server to load a persisted catalog-entry snapshot file
    /// (a path on the **server's** filesystem) under `name`.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); snapshot failures arrive as
    /// [`ServeError::Snapshot`].
    pub fn load_snapshot(
        &mut self,
        name: impl Into<String>,
        path: impl Into<String>,
    ) -> Result<SketchInfo, ServeError> {
        let request = Request::LoadSnapshot {
            name: name.into(),
            path: path.into(),
        };
        match self.call(&request)? {
            Response::Loaded(info) => Ok(info),
            _ => Err(ServeError::UnexpectedResponse { expected: "Loaded" }),
        }
    }

    /// Appends one batch of records to a (possibly new) building sketch;
    /// `last: true` finalizes it.  Batches for one sketch may come from
    /// many clients concurrently — the finalized state is independent of
    /// arrival order.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); ingest refusals arrive as
    /// their own typed variants (config mismatch, invalid record, …).
    pub fn ingest_batch(
        &mut self,
        sketch: impl Into<String>,
        config: SketchConfig,
        records: Vec<IngestRecord>,
        last: bool,
    ) -> Result<IngestAck, ServeError> {
        let request = Request::IngestBatch {
            sketch: sketch.into(),
            config,
            records,
            last,
        };
        match self.call(&request)? {
            Response::Ingested {
                sketch,
                buffered_records,
                ready,
            } => Ok(IngestAck {
                sketch,
                buffered_records,
                ready,
            }),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Ingested",
            }),
        }
    }

    /// Runs one estimation query: `estimator` names a suite from
    /// [`pie_core::suite::SUITE_NAMES`], `statistic` a statistic from
    /// [`Statistic::NAMES`](partial_info_estimators::Statistic::NAMES).
    /// The report is bit-identical to the in-process pipelines on the same
    /// configuration.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); estimator resolution
    /// failures arrive as their typed variants.
    pub fn estimate(
        &mut self,
        sketch: impl Into<String>,
        estimator: impl Into<String>,
        statistic: impl Into<String>,
    ) -> Result<PipelineReport, ServeError> {
        let request = Request::Estimate {
            sketch: sketch.into(),
            estimator: estimator.into(),
            statistic: statistic.into(),
        };
        match self.call(&request)? {
            Response::Estimated(report) => Ok(report),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Estimated",
            }),
        }
    }

    /// Answers many `(estimator, statistic)` combinations against one
    /// sketch from a single server-side replay over its finalized samples.
    /// Reports come back in request order, each bit-identical to the
    /// corresponding [`estimate`](Self::estimate) call.
    ///
    /// ```no_run
    /// use pie_serve::{BatchQuery, ServeClient};
    ///
    /// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
    /// let reports = client
    ///     .batch_estimate(
    ///         "traffic",
    ///         vec![
    ///             BatchQuery {
    ///                 estimator: "max_weighted".into(),
    ///                 statistic: "max_dominance".into(),
    ///             },
    ///             BatchQuery {
    ///                 estimator: "max_weighted".into(),
    ///                 statistic: "distinct_count".into(),
    ///             },
    ///         ],
    ///     )
    ///     .unwrap();
    /// assert_eq!(reports.len(), 2);
    /// ```
    ///
    /// # Errors
    /// As [`estimate`](Self::estimate); over- and under-sized batches are
    /// refused with [`ServeError::InvalidConfig`].
    pub fn batch_estimate(
        &mut self,
        sketch: impl Into<String>,
        queries: Vec<BatchQuery>,
    ) -> Result<Vec<PipelineReport>, ServeError> {
        let request = Request::BatchEstimate {
            sketch: sketch.into(),
            queries,
        };
        match self.call(&request)? {
            Response::BatchEstimated(reports) => Ok(reports),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "BatchEstimated",
            }),
        }
    }

    /// Fetches the engine's observability snapshot: cache hit rate, queue
    /// depth, shed counts, and per-tenant counters.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn stats(&mut self) -> Result<EngineStatsReport, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ServeError::UnexpectedResponse { expected: "Stats" }),
        }
    }
}
