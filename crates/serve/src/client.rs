//! The blocking client library for the sketch-query wire protocol.
//!
//! [`ServeClient`] speaks one request/response exchange at a time over a
//! plain [`TcpStream`] — the shape a query fan-out wants (one client per
//! worker thread), with no async runtime.  Every failure mode is a typed
//! [`ServeError`]: transport failures, protocol violations, socket
//! timeouts, and the server's own typed refusals all arrive through the
//! same error type.
//!
//! # Timeouts
//!
//! A [`ClientConfig`] sets connect/read/write socket timeouts (all off by
//! default, preserving the original block-forever behavior).  An expired
//! timeout surfaces as the typed [`ServeError::Timeout`] — the signal a
//! failover layer needs to declare a node dead instead of hanging on it.
//! A timed-out connection is **poisoned**: its stream position is
//! unknowable, so the client transparently reconnects (replaying its
//! [`identify`](ServeClient::identify) tenant, which is connection state)
//! before the next exchange.
//!
//! # Retry semantics
//!
//! A [`RetryPolicy`] adds bounded retry-with-backoff in exactly three
//! places where retrying is known safe:
//!
//! * **connect** ([`ServeClient::connect_with_retry`]) — the server may not
//!   be listening yet;
//! * **[`ServeError::Overloaded`] responses** — an admission-control shed
//!   means the request was *not executed*, so re-sending it cannot
//!   double-apply anything (the client honors the server's
//!   `retry_after_ms` hint when it is longer than the backoff step);
//! * **timeouts and transport faults on idempotent requests** — reads
//!   (`ListCatalog`, `Estimate`, `BatchEstimate`, `Stats`), the liveness
//!   probe (`Ping`), and `Identify` (re-asserting an identity is a no-op).
//!   The client reconnects and re-sends.
//!
//! Timeouts and transport faults on **non-idempotent** requests
//! (`IngestBatch`, `LoadSnapshot`, `PutSnapshot`) are *never* retried:
//! mid-exchange, whether the server executed the request is unknowable,
//! and a blind re-send could double-ingest a batch.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use partial_info_estimators::{CatalogEntry, PipelineReport};
use pie_engine::EngineStatsReport;
use pie_obs::{MetricsSnapshot, SpanRecord, TraceContext};
use pie_store::StoreError;

use crate::error::ServeError;
use crate::wire::{
    read_response, write_message_traced, BatchQuery, IngestRecord, Request, Response, SketchConfig,
    SketchInfo, WireFault,
};

/// The acknowledgement of one ingest batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestAck {
    /// The sketch the batch was appended to.
    pub sketch: String,
    /// Records buffered server-side after this batch (0 once finalized).
    pub buffered_records: u64,
    /// Whether the sketch is now finalized and answering queries.
    pub ready: bool,
}

/// Bounded retry-with-backoff for the known-safe retry points (see the
/// [module docs](self)).  The default policy never retries, preserving the
/// one-exchange-per-call behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any one sleep (also caps the server's
    /// `retry_after_ms` hint).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 1,
            base_backoff: Duration::from_millis(0),
            max_backoff: Duration::from_millis(0),
        }
    }
}

impl RetryPolicy {
    /// A sensible bounded policy: `attempts` total tries, 10 ms initial
    /// backoff doubling up to 500 ms.
    #[must_use]
    pub fn bounded(attempts: u32) -> Self {
        Self {
            attempts: attempts.max(1),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }

    /// The sleep before retry number `retry` (0-based), before the hint.
    fn backoff(&self, retry: u32) -> Duration {
        let scaled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        scaled.min(self.max_backoff)
    }
}

/// Connection tunables: socket timeouts plus the retry policy.  The
/// default keeps every timeout off (block forever) and never retries —
/// exactly the pre-timeout client behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientConfig {
    /// Cap on establishing the TCP connection (`None`: OS default).
    pub connect_timeout: Option<Duration>,
    /// Cap on any one socket read while awaiting a response (`None`:
    /// block forever).
    pub read_timeout: Option<Duration>,
    /// Cap on any one socket write while sending a request (`None`:
    /// block forever).
    pub write_timeout: Option<Duration>,
    /// The retry policy (connect, overload sheds, idempotent timeouts).
    pub retry: RetryPolicy,
}

impl ClientConfig {
    /// A failover-detection profile: every socket operation capped at
    /// `timeout`, with `attempts` bounded retries.
    #[must_use]
    pub fn with_deadline(timeout: Duration, attempts: u32) -> Self {
        Self {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
            retry: RetryPolicy::bounded(attempts),
        }
    }
}

/// Counters for every silent retry the client performed on the caller's
/// behalf — the visibility a capacity dashboard needs to see pressure
/// *before* requests start failing outright.  Read them through
/// [`ServeClient::retry_stats`]; they only ever grow for the lifetime of
/// the client (reconnects do not reset them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Re-dials during [`ServeClient::connect_with_config`] /
    /// [`ServeClient::connect_with_retry`].
    pub connect_retries: u64,
    /// Re-sends after a typed [`ServeError::Overloaded`] shed (the server
    /// did not execute the request).
    pub overloaded_retries: u64,
    /// Reconnect-and-re-send cycles after a timeout or transport fault on
    /// an idempotent request.
    pub transport_retries: u64,
}

impl RetryStats {
    /// Every retry of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.connect_retries + self.overloaded_retries + self.transport_retries
    }
}

/// Whether a request can safely be re-sent after a timeout or transport
/// fault, when the first send's fate is unknowable.
fn idempotent(request: &Request) -> bool {
    match request {
        // Pure reads, the liveness probe, and identity re-assertion.
        Request::ListCatalog
        | Request::Estimate { .. }
        | Request::BatchEstimate { .. }
        | Request::Stats
        | Request::Metrics
        | Request::QueryTrace { .. }
        | Request::Ping
        | Request::Identify { .. } => true,
        // State-changing: a double-send could double-apply.
        Request::IngestBatch { .. }
        | Request::LoadSnapshot { .. }
        | Request::PutSnapshot { .. } => false,
    }
}

/// Whether an I/O error is a socket-timeout expiry (`read_timeout` and
/// `write_timeout` surface as `WouldBlock` on Unix, `TimedOut` elsewhere).
fn is_timeout(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Maps a store-layer failure to its client-facing error, carving the
/// typed [`ServeError::Timeout`] out of the I/O bucket.
fn store_error(error: &StoreError, during: &str) -> ServeError {
    if let StoreError::Io(io_error) = error {
        if is_timeout(io_error) {
            return ServeError::Timeout {
                during: during.to_string(),
            };
        }
    }
    ServeError::protocol(error)
}

/// A blocking connection to a [`Server`](crate::Server).
///
/// ```no_run
/// use pie_serve::ServeClient;
///
/// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
/// let report = client
///     .estimate("traffic", "max_weighted", "max_dominance")
///     .unwrap();
/// println!("{}", report.render());
/// ```
pub struct ServeClient {
    /// Resolved addresses, kept for reconnects after poisoning.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry: RetryPolicy,
    /// The last successfully identified tenant, replayed on reconnect
    /// (identity is connection state on the server).
    tenant: Option<String>,
    /// A timeout or transport fault left the stream position unknowable;
    /// reconnect before the next exchange.
    poisoned: bool,
    /// Trace context stamped onto every outgoing frame (`None`: untraced
    /// frames, byte-identical to the pre-tracing wire).
    trace: Option<TraceContext>,
    /// Silent-retry counters; see [`RetryStats`].
    retry_stats: RetryStats,
}

impl ServeClient {
    /// Connects to a server.
    ///
    /// # Errors
    /// [`ServeError::Transport`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::connect_with_config(addr, ClientConfig::default())
    }

    /// Connects, retrying refused/failed connection attempts under
    /// `policy`, and installs the same policy for
    /// [`Overloaded`](ServeError::Overloaded)-response and idempotent
    /// timeout retries on every subsequent call.
    ///
    /// # Errors
    /// [`ServeError::Transport`] once the attempts are exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<Self, ServeError> {
        Self::connect_with_config(
            addr,
            ClientConfig {
                retry: policy,
                ..ClientConfig::default()
            },
        )
    }

    /// Connects under explicit [`ClientConfig`] tunables: socket timeouts
    /// and the retry policy.
    ///
    /// # Errors
    /// [`ServeError::Transport`] (or [`ServeError::Timeout`] when the
    /// connect timeout expired) once the attempts are exhausted.
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Self, ServeError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServeError::transport(&e))?
            .collect();
        let policy = config.retry;
        let mut retry = 0u32;
        let stream = loop {
            match dial(&addrs, &config) {
                Ok(stream) => break stream,
                Err(_) if retry + 1 < policy.attempts.max(1) => {
                    std::thread::sleep(policy.backoff(retry));
                    retry += 1;
                }
                Err(e) if is_timeout(&e) => {
                    return Err(ServeError::Timeout {
                        during: "connecting".to_string(),
                    })
                }
                Err(e) => return Err(ServeError::transport(&e)),
            }
        };
        let (reader, writer) = split(stream, &config)?;
        Ok(Self {
            addrs,
            config,
            reader,
            writer,
            retry: policy,
            tenant: None,
            poisoned: false,
            trace: None,
            retry_stats: RetryStats {
                connect_retries: u64::from(retry),
                ..RetryStats::default()
            },
        })
    }

    /// Stamps `trace` onto every subsequent outgoing frame as the optional
    /// trace-context wire extension; `None` reverts to untraced frames.
    /// A server (or router) that sees the context tags its per-stage span
    /// records with the caller's `trace_id`, retrievable later through
    /// [`query_trace`](Self::query_trace).
    pub fn set_trace(&mut self, trace: Option<TraceContext>) {
        self.trace = trace;
    }

    /// The trace context currently stamped onto outgoing frames.
    #[must_use]
    pub fn trace(&self) -> Option<TraceContext> {
        self.trace
    }

    /// Counters for every silent retry this client has performed —
    /// connect re-dials, overload re-sends, idempotent transport retries.
    #[must_use]
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Replaces the retry policy used for
    /// [`Overloaded`](ServeError::Overloaded)-response and idempotent
    /// timeout retries.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self.config.retry = policy;
        self
    }

    /// Re-dials a poisoned connection and replays the identified tenant.
    fn reconnect(&mut self) -> Result<(), ServeError> {
        let stream = dial(&self.addrs, &self.config).map_err(|e| {
            if is_timeout(&e) {
                ServeError::Timeout {
                    during: "reconnecting".to_string(),
                }
            } else {
                ServeError::transport(&e)
            }
        })?;
        let (reader, writer) = split(stream, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        self.poisoned = false;
        if let Some(tenant) = self.tenant.clone() {
            match self.exchange(&Request::Identify { tenant })? {
                Response::Identified { .. } => {}
                _ => {
                    return Err(ServeError::UnexpectedResponse {
                        expected: "Identified",
                    })
                }
            }
        }
        Ok(())
    }

    /// One request/response exchange on the wire.  Timeouts and transport
    /// faults poison the connection (stream position unknowable).
    fn exchange(&mut self, request: &Request) -> Result<Response, ServeError> {
        if let Err(e) = write_message_traced(&mut self.writer, request, self.trace.as_ref()) {
            self.poisoned = true;
            return Err(store_error(&e, "writing the request"));
        }
        match read_response(&mut self.reader) {
            Ok(Some(Response::Error(error))) => Err(error),
            Ok(Some(response)) => Ok(response),
            Ok(None) => {
                self.poisoned = true;
                Err(ServeError::Transport {
                    detail: "server closed the connection".to_string(),
                })
            }
            Err(WireFault { error, fatal }) => {
                if fatal {
                    self.poisoned = true;
                }
                Err(store_error(&error, "reading the response"))
            }
        }
    }

    /// One logical call.  Retries typed
    /// [`Overloaded`](ServeError::Overloaded) sheds for any request (a shed
    /// request was not executed), and [`Timeout`](ServeError::Timeout)/
    /// [`Transport`](ServeError::Transport) faults for **idempotent**
    /// requests only (reconnecting first); sleeps the longer of the backoff
    /// step and the server's hint, capped at `max_backoff`.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut retry = 0u32;
        loop {
            if self.poisoned {
                // Establishing a fresh connection is always safe; only the
                // *re-send* of a request needs idempotency, and this path
                // precedes any send.
                self.reconnect()?;
            }
            match self.exchange(request) {
                Err(ServeError::Overloaded {
                    what,
                    retry_after_ms,
                }) => {
                    if retry + 1 >= self.retry.attempts.max(1) {
                        return Err(ServeError::Overloaded {
                            what,
                            retry_after_ms,
                        });
                    }
                    let hint = Duration::from_millis(retry_after_ms).min(self.retry.max_backoff);
                    std::thread::sleep(self.retry.backoff(retry).max(hint));
                    retry += 1;
                    self.retry_stats.overloaded_retries += 1;
                }
                Err(error @ (ServeError::Timeout { .. } | ServeError::Transport { .. }))
                    if idempotent(request) && retry + 1 < self.retry.attempts.max(1) =>
                {
                    std::thread::sleep(self.retry.backoff(retry));
                    retry += 1;
                    self.retry_stats.transport_retries += 1;
                    let _ = error;
                }
                other => return other,
            }
        }
    }

    /// Lists every catalog entry, sorted by name.
    ///
    /// # Errors
    /// Transport/protocol failures or the server's typed refusal.
    pub fn list_catalog(&mut self) -> Result<Vec<SketchInfo>, ServeError> {
        match self.call(&Request::ListCatalog)? {
            Response::Catalog(entries) => Ok(entries),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Catalog",
            }),
        }
    }

    /// Names the tenant this connection's subsequent requests bill to
    /// (quota buckets and `Stats` counters).  The identity survives
    /// timeout-driven reconnects: the client replays it on the new
    /// connection.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn identify(&mut self, tenant: impl Into<String>) -> Result<String, ServeError> {
        let request = Request::Identify {
            tenant: tenant.into(),
        };
        match self.call(&request)? {
            Response::Identified { tenant } => {
                self.tenant = Some(tenant.clone());
                Ok(tenant)
            }
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Identified",
            }),
        }
    }

    /// Asks the server to load a persisted catalog-entry snapshot file
    /// (a path on the **server's** filesystem) under `name`.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); snapshot failures arrive as
    /// [`ServeError::Snapshot`].
    pub fn load_snapshot(
        &mut self,
        name: impl Into<String>,
        path: impl Into<String>,
    ) -> Result<SketchInfo, ServeError> {
        let request = Request::LoadSnapshot {
            name: name.into(),
            path: path.into(),
        };
        match self.call(&request)? {
            Response::Loaded(info) => Ok(info),
            _ => Err(ServeError::UnexpectedResponse { expected: "Loaded" }),
        }
    }

    /// Ships an encoded catalog entry to the server **in-band** and
    /// registers it under `name` — the cluster replication path; nothing
    /// has to exist on the server's filesystem.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); undecodable bytes arrive as
    /// [`ServeError::Snapshot`].
    pub fn put_snapshot(
        &mut self,
        name: impl Into<String>,
        entry: &CatalogEntry,
    ) -> Result<SketchInfo, ServeError> {
        let snapshot = pie_store::encode_to_vec(entry).map_err(|e| ServeError::Snapshot {
            detail: e.to_string(),
        })?;
        self.put_snapshot_bytes(name, snapshot)
    }

    /// [`put_snapshot`](Self::put_snapshot) with pre-encoded entry bytes
    /// (lets a router replicate one encoding to many nodes without
    /// re-encoding).
    ///
    /// # Errors
    /// As [`put_snapshot`](Self::put_snapshot).
    pub fn put_snapshot_bytes(
        &mut self,
        name: impl Into<String>,
        snapshot: Vec<u8>,
    ) -> Result<SketchInfo, ServeError> {
        let request = Request::PutSnapshot {
            name: name.into(),
            snapshot,
        };
        match self.call(&request)? {
            Response::Loaded(info) => Ok(info),
            _ => Err(ServeError::UnexpectedResponse { expected: "Loaded" }),
        }
    }

    /// Liveness probe: a full round trip through the server's event loop
    /// and worker pool, touching neither the catalog nor the engine.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog) — a dead or hung node
    /// surfaces as [`ServeError::Timeout`] / [`ServeError::Transport`].
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ServeError::UnexpectedResponse { expected: "Pong" }),
        }
    }

    /// Appends one batch of records to a (possibly new) building sketch;
    /// `last: true` finalizes it.  Batches for one sketch may come from
    /// many clients concurrently — the finalized state is independent of
    /// arrival order.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); ingest refusals arrive as
    /// their own typed variants (config mismatch, invalid record, …).
    pub fn ingest_batch(
        &mut self,
        sketch: impl Into<String>,
        config: SketchConfig,
        records: Vec<IngestRecord>,
        last: bool,
    ) -> Result<IngestAck, ServeError> {
        let request = Request::IngestBatch {
            sketch: sketch.into(),
            config,
            records,
            last,
        };
        match self.call(&request)? {
            Response::Ingested {
                sketch,
                buffered_records,
                ready,
            } => Ok(IngestAck {
                sketch,
                buffered_records,
                ready,
            }),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Ingested",
            }),
        }
    }

    /// Runs one estimation query: `estimator` names a suite from
    /// [`pie_core::suite::SUITE_NAMES`], `statistic` a statistic from
    /// [`Statistic::NAMES`](partial_info_estimators::Statistic::NAMES).
    /// The report is bit-identical to the in-process pipelines on the same
    /// configuration.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); estimator resolution
    /// failures arrive as their typed variants.
    pub fn estimate(
        &mut self,
        sketch: impl Into<String>,
        estimator: impl Into<String>,
        statistic: impl Into<String>,
    ) -> Result<PipelineReport, ServeError> {
        let request = Request::Estimate {
            sketch: sketch.into(),
            estimator: estimator.into(),
            statistic: statistic.into(),
        };
        match self.call(&request)? {
            Response::Estimated(report) => Ok(report),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Estimated",
            }),
        }
    }

    /// Answers many `(estimator, statistic)` combinations against one
    /// sketch from a single server-side replay over its finalized samples.
    /// Reports come back in request order, each bit-identical to the
    /// corresponding [`estimate`](Self::estimate) call.
    ///
    /// ```no_run
    /// use pie_serve::{BatchQuery, ServeClient};
    ///
    /// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
    /// let reports = client
    ///     .batch_estimate(
    ///         "traffic",
    ///         vec![
    ///             BatchQuery {
    ///                 estimator: "max_weighted".into(),
    ///                 statistic: "max_dominance".into(),
    ///             },
    ///             BatchQuery {
    ///                 estimator: "max_weighted".into(),
    ///                 statistic: "distinct_count".into(),
    ///             },
    ///         ],
    ///     )
    ///     .unwrap();
    /// assert_eq!(reports.len(), 2);
    /// ```
    ///
    /// # Errors
    /// As [`estimate`](Self::estimate); over- and under-sized batches are
    /// refused with [`ServeError::InvalidConfig`].
    pub fn batch_estimate(
        &mut self,
        sketch: impl Into<String>,
        queries: Vec<BatchQuery>,
    ) -> Result<Vec<PipelineReport>, ServeError> {
        let request = Request::BatchEstimate {
            sketch: sketch.into(),
            queries,
        };
        match self.call(&request)? {
            Response::BatchEstimated(reports) => Ok(reports),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "BatchEstimated",
            }),
        }
    }

    /// Fetches the engine's observability snapshot: cache hit rate, queue
    /// depth, shed counts, and per-tenant counters.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn stats(&mut self) -> Result<EngineStatsReport, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ServeError::UnexpectedResponse { expected: "Stats" }),
        }
    }

    /// Fetches the server's full metrics-registry snapshot: exact request
    /// counters, gauges, and the log-bucketed latency histograms.
    ///
    /// ```no_run
    /// use pie_serve::ServeClient;
    ///
    /// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
    /// let metrics = client.metrics().unwrap();
    /// for counter in &metrics.counters {
    ///     println!("{} {}", counter.name, counter.value);
    /// }
    /// println!("{}", metrics.render_text());
    /// ```
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Metrics",
            }),
        }
    }

    /// Fetches every per-stage span the server still holds for `trace_id`
    /// (the ring is bounded; old traces age out).  Stamp a
    /// [`TraceContext`] with [`set_trace`](Self::set_trace) first, issue
    /// the request to trace, then query its spans back:
    ///
    /// ```no_run
    /// use pie_serve::{ServeClient, TraceContext};
    ///
    /// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
    /// client.set_trace(Some(TraceContext::new(0xBEEF, 1)));
    /// let _report = client
    ///     .estimate("traffic", "max_weighted", "max_dominance")
    ///     .unwrap();
    /// client.set_trace(None);
    /// for span in client.query_trace(0xBEEF).unwrap() {
    ///     println!("{} {} {}ns", span.node, span.stage, span.duration_nanos);
    /// }
    /// ```
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog).
    pub fn query_trace(&mut self, trace_id: u64) -> Result<Vec<SpanRecord>, ServeError> {
        match self.call(&Request::QueryTrace { trace_id })? {
            Response::Traces(spans) => Ok(spans),
            _ => Err(ServeError::UnexpectedResponse { expected: "Traces" }),
        }
    }
}

/// Dials the first address that answers, honoring the connect timeout.
fn dial(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
    let mut last_error = None;
    for addr in addrs {
        let attempt = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(addr, timeout),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => last_error = Some(e),
        }
    }
    Err(last_error
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")))
}

/// Applies the read/write timeouts and splits the stream into halves (the
/// socket options are set before cloning, so both halves share them).
fn split(
    stream: TcpStream,
    config: &ClientConfig,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), ServeError> {
    stream
        .set_read_timeout(config.read_timeout)
        .and_then(|()| stream.set_write_timeout(config.write_timeout))
        .map_err(|e| ServeError::transport(&e))?;
    let read_half = stream.try_clone().map_err(|e| ServeError::transport(&e))?;
    Ok((BufReader::new(read_half), BufWriter::new(stream)))
}
