//! The blocking client library for the sketch-query wire protocol.
//!
//! [`ServeClient`] speaks one request/response exchange at a time over a
//! plain [`TcpStream`] — the shape a query fan-out wants (one client per
//! worker thread), with no async runtime.  Every failure mode is a typed
//! [`ServeError`]: transport failures, protocol violations, and the
//! server's own typed refusals all arrive through the same error type.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use partial_info_estimators::PipelineReport;

use crate::error::ServeError;
use crate::wire::{
    read_response, write_message, IngestRecord, Request, Response, SketchConfig, SketchInfo,
};

/// The acknowledgement of one ingest batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestAck {
    /// The sketch the batch was appended to.
    pub sketch: String,
    /// Records buffered server-side after this batch (0 once finalized).
    pub buffered_records: u64,
    /// Whether the sketch is now finalized and answering queries.
    pub ready: bool,
}

/// A blocking connection to a [`Server`](crate::Server).
///
/// ```no_run
/// use pie_serve::ServeClient;
///
/// let mut client = ServeClient::connect("127.0.0.1:7070").unwrap();
/// let report = client
///     .estimate("traffic", "max_weighted", "max_dominance")
///     .unwrap();
/// println!("{}", report.render());
/// ```
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects to a server.
    ///
    /// # Errors
    /// [`ServeError::Transport`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::transport(&e))?;
        let read_half = stream.try_clone().map_err(|e| ServeError::transport(&e))?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response exchange.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_message(&mut self.writer, request).map_err(|e| ServeError::protocol(&e))?;
        match read_response(&mut self.reader) {
            Ok(Some(Response::Error(error))) => Err(error),
            Ok(Some(response)) => Ok(response),
            Ok(None) => Err(ServeError::Transport {
                detail: "server closed the connection".to_string(),
            }),
            Err(fault) => Err(fault.to_serve_error()),
        }
    }

    /// Lists every catalog entry, sorted by name.
    ///
    /// # Errors
    /// Transport/protocol failures or the server's typed refusal.
    pub fn list_catalog(&mut self) -> Result<Vec<SketchInfo>, ServeError> {
        match self.call(&Request::ListCatalog)? {
            Response::Catalog(entries) => Ok(entries),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Catalog",
            }),
        }
    }

    /// Asks the server to load a persisted catalog-entry snapshot file
    /// (a path on the **server's** filesystem) under `name`.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); snapshot failures arrive as
    /// [`ServeError::Snapshot`].
    pub fn load_snapshot(
        &mut self,
        name: impl Into<String>,
        path: impl Into<String>,
    ) -> Result<SketchInfo, ServeError> {
        let request = Request::LoadSnapshot {
            name: name.into(),
            path: path.into(),
        };
        match self.call(&request)? {
            Response::Loaded(info) => Ok(info),
            _ => Err(ServeError::UnexpectedResponse { expected: "Loaded" }),
        }
    }

    /// Appends one batch of records to a (possibly new) building sketch;
    /// `last: true` finalizes it.  Batches for one sketch may come from
    /// many clients concurrently — the finalized state is independent of
    /// arrival order.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); ingest refusals arrive as
    /// their own typed variants (config mismatch, invalid record, …).
    pub fn ingest_batch(
        &mut self,
        sketch: impl Into<String>,
        config: SketchConfig,
        records: Vec<IngestRecord>,
        last: bool,
    ) -> Result<IngestAck, ServeError> {
        let request = Request::IngestBatch {
            sketch: sketch.into(),
            config,
            records,
            last,
        };
        match self.call(&request)? {
            Response::Ingested {
                sketch,
                buffered_records,
                ready,
            } => Ok(IngestAck {
                sketch,
                buffered_records,
                ready,
            }),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Ingested",
            }),
        }
    }

    /// Runs one estimation query: `estimator` names a suite from
    /// [`pie_core::suite::SUITE_NAMES`], `statistic` a statistic from
    /// [`Statistic::NAMES`](partial_info_estimators::Statistic::NAMES).
    /// The report is bit-identical to the in-process pipelines on the same
    /// configuration.
    ///
    /// # Errors
    /// As [`list_catalog`](Self::list_catalog); estimator resolution
    /// failures arrive as their typed variants.
    pub fn estimate(
        &mut self,
        sketch: impl Into<String>,
        estimator: impl Into<String>,
        statistic: impl Into<String>,
    ) -> Result<PipelineReport, ServeError> {
        let request = Request::Estimate {
            sketch: sketch.into(),
            estimator: estimator.into(),
            statistic: statistic.into(),
        };
        match self.call(&request)? {
            Response::Estimated(report) => Ok(report),
            _ => Err(ServeError::UnexpectedResponse {
                expected: "Estimated",
            }),
        }
    }
}
