//! The concurrent sketch catalog: name → finalized (or building) sketch.
//!
//! [`SketchCatalog`] is the server's shared state.  It is sharded across
//! independent [`RwLock`]s (shard = hash of the name), so queries against
//! different sketches never contend, estimation itself runs entirely
//! outside the locks (entries are handed out as cheap [`Arc`] clones), and
//! a slow `LoadSnapshot` or finalize only blocks its own shard.
//!
//! Entries come from two sources, mirroring the wire protocol:
//!
//! * [`SketchCatalog::load_snapshot`] — a persisted
//!   [`CatalogEntry`] snapshot file (written by
//!   [`CatalogEntry::save`], `StreamPipeline::into_catalog_entry`, or a
//!   checkpoint-resumed session's `finish_into_catalog`);
//! * [`SketchCatalog::ingest`] — live record batches that accumulate in a
//!   *building* slot until a final batch turns them into a dataset and
//!   samples it exactly as the in-process pipelines would.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use partial_info_estimators::{CatalogEntry, CatalogError, PipelineReport, Scheme};
use pie_datagen::Dataset;
use pie_sampling::hash::mix64;
use pie_sampling::Instance;

use crate::error::ServeError;
use crate::wire::{IngestRecord, SketchConfig, SketchInfo};

/// Number of independent lock shards.  A small power of two: enough to keep
/// unrelated sketches from contending, cheap to scan for listings.
const LOCK_SHARDS: usize = 8;

/// Highest instance index an ingested record may carry.  Bounds the
/// per-instance allocations a hostile index could force (and the paper's
/// estimators operate over a handful of instances anyway).
pub const MAX_INSTANCES: u64 = 1024;

/// Highest Monte-Carlo trial count a wire configuration may request; each
/// trial costs one full sampling pass at finalize time.
pub const MAX_TRIALS: u64 = 4096;

/// Highest ingest-shard count a wire configuration may request.
pub const MAX_SHARDS: u64 = 64;

/// One catalog slot: a sketch being assembled, finalizing, or servable.
enum Slot {
    /// Records are still arriving; the configuration is pinned by the first
    /// batch.
    Building {
        /// The configuration every batch must agree on.
        config: SketchConfig,
        /// Records buffered so far, in arrival order.
        records: Vec<IngestRecord>,
    },
    /// A final batch arrived and the entry is being built *outside* the
    /// shard lock; no further records are accepted.
    Finalizing {
        /// The pinned configuration.
        config: SketchConfig,
        /// Records handed to the build.
        buffered: u64,
    },
    /// Finalized and servable.
    Ready(Arc<CatalogEntry>),
}

impl Slot {
    fn info(&self, name: &str) -> SketchInfo {
        match self {
            Slot::Building { config, records } => SketchInfo {
                name: name.to_string(),
                config: *config,
                instances: records.iter().map(|r| r.instance + 1).max().unwrap_or(0),
                ready: false,
                buffered_records: records.len() as u64,
            },
            Slot::Finalizing { config, buffered } => SketchInfo {
                name: name.to_string(),
                config: *config,
                instances: 0,
                ready: false,
                buffered_records: *buffered,
            },
            Slot::Ready(entry) => SketchInfo {
                name: name.to_string(),
                config: SketchConfig {
                    scheme: entry.scheme(),
                    shards: entry.shards() as u64,
                    trials: entry.trials(),
                    base_salt: entry.base_salt(),
                },
                instances: entry.num_instances() as u64,
                ready: true,
                buffered_records: 0,
            },
        }
    }
}

/// The concurrent, name-keyed sketch catalog.  See the [module docs](self).
pub struct SketchCatalog {
    shards: Vec<RwLock<HashMap<String, Slot>>>,
}

impl Default for SketchCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl SketchCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..LOCK_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Slot>> {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(mix64(h) % LOCK_SHARDS as u64) as usize]
    }

    /// Every entry's listing row, sorted by name (lock shards scatter names,
    /// so the scan order is canonicalized for deterministic listings).
    #[must_use]
    pub fn list(&self) -> Vec<SketchInfo> {
        let mut rows: Vec<SketchInfo> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let guard = shard.read().expect("catalog lock poisoned");
                guard
                    .iter()
                    .map(|(name, slot)| slot.info(name))
                    .collect::<Vec<_>>()
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Registers an already-built entry under `name`, replacing any previous
    /// slot atomically (readers see either the old or the new entry, never
    /// an intermediate state).
    pub fn insert(&self, name: impl Into<String>, entry: CatalogEntry) -> SketchInfo {
        let name = name.into();
        let slot = Slot::Ready(Arc::new(entry));
        let info = slot.info(&name);
        self.shard(&name)
            .write()
            .expect("catalog lock poisoned")
            .insert(name, slot);
        info
    }

    /// Loads a persisted [`CatalogEntry`] snapshot file and registers it
    /// under `name`.
    ///
    /// The (potentially slow) file read and decode run *outside* the shard
    /// lock; only the final pointer swap takes it.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] for any store failure.
    pub fn load_snapshot(&self, name: &str, path: &str) -> Result<SketchInfo, ServeError> {
        let entry = CatalogEntry::load(path).map_err(|e| ServeError::Snapshot {
            detail: e.to_string(),
        })?;
        Ok(self.insert(name, entry))
    }

    /// Appends one batch of records to the sketch named `sketch`, creating
    /// its building slot on first contact; `last: true` finalizes the
    /// buffered records into a servable entry.
    ///
    /// Returns `(buffered_records, ready)` — the state after this batch.
    ///
    /// Validation (scheme bounds, [`MAX_TRIALS`]/[`MAX_SHARDS`] caps,
    /// per-record value and [`MAX_INSTANCES`] bounds, "nothing to
    /// finalize") happens *before* any state mutates, so a failed request
    /// never creates or corrupts a slot.  The expensive finalize itself —
    /// one full sampling pass per trial — runs **outside** the shard lock
    /// (the slot sits in a `Finalizing` state meanwhile), so listings and
    /// unrelated sketches never stall behind it.
    ///
    /// # Errors
    /// [`ServeError::SketchFinalized`] for batches after (or during)
    /// finalization, [`ServeError::ConfigMismatch`] when `config` disagrees
    /// with earlier batches, [`ServeError::InvalidRecord`] /
    /// [`ServeError::InvalidConfig`] for data-model violations.
    pub fn ingest(
        &self,
        sketch: &str,
        config: SketchConfig,
        records: &[IngestRecord],
        last: bool,
    ) -> Result<(u64, bool), ServeError> {
        if let Some(detail) = invalid_config(&config) {
            return Err(ServeError::InvalidConfig {
                detail: detail.to_string(),
            });
        }
        for r in records {
            if !(r.value.is_finite() && r.value >= 0.0) {
                return Err(ServeError::InvalidRecord {
                    detail: format!(
                        "record (instance {}, key {}) has value {}, need finite and nonnegative",
                        r.instance, r.key, r.value
                    ),
                });
            }
            if r.instance >= MAX_INSTANCES {
                return Err(ServeError::InvalidRecord {
                    detail: format!(
                        "record instance index {} is at or above the {MAX_INSTANCES}-instance limit",
                        r.instance
                    ),
                });
            }
        }

        // Phase 1 (short critical section): validate against the slot and
        // either buffer the records or claim them for finalization.
        let lock = self.shard(sketch);
        let (pinned, to_build) = {
            let mut guard = lock.write().expect("catalog lock poisoned");
            match guard.get_mut(sketch) {
                Some(Slot::Ready(_)) | Some(Slot::Finalizing { .. }) => {
                    return Err(ServeError::SketchFinalized {
                        name: sketch.to_string(),
                    })
                }
                Some(Slot::Building {
                    config: pinned,
                    records: buffered,
                }) => {
                    if let Some(field) = config_disagreement(pinned, &config) {
                        return Err(ServeError::ConfigMismatch {
                            sketch: sketch.to_string(),
                            field: field.to_string(),
                        });
                    }
                    if !last {
                        buffered.extend_from_slice(records);
                        return Ok((buffered.len() as u64, false));
                    }
                    if buffered.is_empty() && records.is_empty() {
                        return Err(no_records_error(sketch));
                    }
                    let pinned = *pinned;
                    let mut taken = std::mem::take(buffered);
                    taken.extend_from_slice(records);
                    guard.insert(
                        sketch.to_string(),
                        Slot::Finalizing {
                            config: pinned,
                            buffered: taken.len() as u64,
                        },
                    );
                    (pinned, taken)
                }
                None => {
                    if !last {
                        guard.insert(
                            sketch.to_string(),
                            Slot::Building {
                                config,
                                records: records.to_vec(),
                            },
                        );
                        return Ok((records.len() as u64, false));
                    }
                    if records.is_empty() {
                        return Err(no_records_error(sketch));
                    }
                    guard.insert(
                        sketch.to_string(),
                        Slot::Finalizing {
                            config,
                            buffered: records.len() as u64,
                        },
                    );
                    (config, records.to_vec())
                }
            }
        };

        // Phase 2: the expensive build, outside the lock.  Validation above
        // guarantees it succeeds; restore the building slot if it somehow
        // does not, so the records are not lost.
        let dataset = assemble_dataset(sketch, &to_build);
        let entry = dataset.and_then(|dataset| {
            CatalogEntry::build(
                dataset,
                pinned.scheme,
                usize::try_from(pinned.shards).unwrap_or(usize::MAX),
                pinned.trials,
                pinned.base_salt,
            )
            .map_err(|e| ServeError::InvalidConfig {
                detail: e.to_string(),
            })
        });
        let mut guard = lock.write().expect("catalog lock poisoned");
        match entry {
            Ok(entry) => {
                guard.insert(sketch.to_string(), Slot::Ready(Arc::new(entry)));
                Ok((0, true))
            }
            Err(e) => {
                guard.insert(
                    sketch.to_string(),
                    Slot::Building {
                        config: pinned,
                        records: to_build,
                    },
                );
                Err(e)
            }
        }
    }

    /// The finalized entry named `sketch`, as a cheap clone the caller can
    /// estimate over without holding any catalog lock.
    ///
    /// # Errors
    /// [`ServeError::UnknownSketch`] / [`ServeError::SketchNotReady`].
    pub fn get(&self, sketch: &str) -> Result<Arc<CatalogEntry>, ServeError> {
        let guard = self.shard(sketch).read().expect("catalog lock poisoned");
        match guard.get(sketch) {
            None => Err(ServeError::UnknownSketch {
                name: sketch.to_string(),
            }),
            Some(Slot::Building { .. }) | Some(Slot::Finalizing { .. }) => {
                Err(ServeError::SketchNotReady {
                    name: sketch.to_string(),
                })
            }
            Some(Slot::Ready(entry)) => Ok(Arc::clone(entry)),
        }
    }

    /// Answers one estimation query: resolves the sketch, then the suite
    /// and statistic names, and runs the shared estimation cores on one
    /// engine thread (concurrency comes from the connections, and thread
    /// count never changes the report).
    ///
    /// # Errors
    /// Sketch resolution as [`get`](Self::get); name-resolution and regime
    /// failures mapped to their typed [`ServeError`] variants.
    pub fn estimate(
        &self,
        sketch: &str,
        estimator: &str,
        statistic: &str,
    ) -> Result<PipelineReport, ServeError> {
        let entry = self.get(sketch)?;
        entry
            .estimate_named(estimator, statistic, Some(1))
            .map_err(|e| map_catalog_error(estimator, e))
    }
}

/// Maps a [`CatalogError`] onto the wire's typed refusals, attributing
/// suite-applicability failures to `estimator` — shared by the single and
/// batch estimation paths so both produce identical errors.
pub(crate) fn map_catalog_error(estimator: &str, e: CatalogError) -> ServeError {
    match e {
        CatalogError::UnknownSuite { name } => ServeError::UnknownEstimator { name },
        CatalogError::UnknownStatistic { name } => ServeError::UnknownStatistic { name },
        other @ (CatalogError::RegimeMismatch { .. }
        | CatalogError::ArityMismatch { .. }
        | CatalogError::NonBinaryData { .. }) => ServeError::EstimatorMismatch {
            estimator: estimator.to_string(),
            detail: other.to_string(),
        },
        other => ServeError::InvalidConfig {
            detail: other.to_string(),
        },
    }
}

/// Why a wire configuration is unacceptable, if it is — scheme parameters
/// out of range (the same bounds `CatalogEntry::build` enforces, checked
/// eagerly so a building slot can always finalize later) or resource
/// requests above the serving caps (the peer is untrusted; an unbounded
/// trial or shard count is a denial-of-service lever, not a workload).
fn invalid_config(config: &SketchConfig) -> Option<&'static str> {
    match config.scheme {
        Scheme::ObliviousPoisson { p } if !(p > 0.0 && p <= 1.0) => {
            return Some("sampling probability must lie in (0, 1]")
        }
        Scheme::PpsPoisson { tau_star } if !(tau_star > 0.0 && tau_star.is_finite()) => {
            return Some("tau_star must be positive and finite")
        }
        _ => {}
    }
    if config.trials > MAX_TRIALS {
        return Some("trial count exceeds the serving limit");
    }
    if config.shards > MAX_SHARDS {
        return Some("shard count exceeds the serving limit");
    }
    None
}

/// The typed refusal for a finalize with nothing buffered.
fn no_records_error(sketch: &str) -> ServeError {
    ServeError::InvalidConfig {
        detail: format!("sketch {sketch:?} has no records to finalize"),
    }
}

/// The first field on which two sketch configurations disagree, if any.
fn config_disagreement(a: &SketchConfig, b: &SketchConfig) -> Option<&'static str> {
    if a.scheme != b.scheme {
        Some("scheme")
    } else if a.shards != b.shards {
        Some("shards")
    } else if a.trials != b.trials {
        Some("trials")
    } else if a.base_salt != b.base_salt {
        Some("base_salt")
    } else {
        None
    }
}

/// Builds the dataset a building sketch's buffered records describe.
///
/// Records may arrive in any order and from any number of concurrent
/// ingesters: values for the same `(instance, key)` accumulate, and the
/// instance count is the highest instance index seen plus one.  The result
/// is therefore independent of arrival order — the property that lets
/// shard-parallel ingest clients reproduce the in-process pipelines' input
/// exactly.
fn assemble_dataset(name: &str, records: &[IngestRecord]) -> Result<Arc<Dataset>, ServeError> {
    let instances = records
        .iter()
        .map(|r| r.instance + 1)
        .max()
        .ok_or_else(|| ServeError::InvalidConfig {
            detail: format!("sketch {name:?} has no records to finalize"),
        })?;
    let instances = usize::try_from(instances).map_err(|_| ServeError::InvalidRecord {
        detail: "instance index does not fit in usize on this host".to_string(),
    })?;
    let mut built = vec![Instance::new(); instances];
    for r in records {
        built[r.instance as usize].add(r.key, r.value);
    }
    Ok(Arc::new(Dataset::new(name.to_string(), built)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use partial_info_estimators::Scheme;
    use pie_datagen::{dataset_records, paper_example};

    fn config() -> SketchConfig {
        SketchConfig {
            scheme: Scheme::oblivious(0.5),
            shards: 2,
            trials: 10,
            base_salt: 3,
        }
    }

    fn records_of(dataset: &Dataset) -> Vec<IngestRecord> {
        dataset_records(dataset)
            .map(|r| IngestRecord {
                instance: r.instance,
                key: r.key,
                value: r.value,
            })
            .collect()
    }

    #[test]
    fn ingest_accumulates_then_finalizes() {
        let catalog = SketchCatalog::new();
        let data = paper_example().take_instances(2);
        let records = records_of(&data);
        let (mid, tail) = records.split_at(records.len() / 2);
        let (buffered, ready) = catalog.ingest("s", config(), mid, false).unwrap();
        assert_eq!(buffered, mid.len() as u64);
        assert!(!ready);
        assert!(matches!(
            catalog.get("s").unwrap_err(),
            ServeError::SketchNotReady { .. }
        ));
        let (_, ready) = catalog.ingest("s", config(), tail, true).unwrap();
        assert!(ready);
        let entry = catalog.get("s").unwrap();
        assert_eq!(entry.num_instances(), 2);
        // Ingesting into a finalized sketch is refused.
        assert!(matches!(
            catalog.ingest("s", config(), &[], false).unwrap_err(),
            ServeError::SketchFinalized { .. }
        ));
    }

    #[test]
    fn record_order_does_not_change_the_entry() {
        let data = paper_example().take_instances(2);
        let records = records_of(&data);
        let mut reversed = records.clone();
        reversed.reverse();
        let a = SketchCatalog::new();
        a.ingest("s", config(), &records, true).unwrap();
        let b = SketchCatalog::new();
        b.ingest("s", config(), &reversed, true).unwrap();
        assert_eq!(
            a.estimate("s", "max_oblivious", "max_dominance").unwrap(),
            b.estimate("s", "max_oblivious", "max_dominance").unwrap()
        );
    }

    #[test]
    fn config_and_record_violations_are_typed_and_do_not_corrupt_state() {
        let catalog = SketchCatalog::new();
        catalog
            .ingest(
                "s",
                config(),
                &records_of(&paper_example().take_instances(2)),
                false,
            )
            .unwrap();
        let mut other = config();
        other.trials = 99;
        assert!(matches!(
            catalog.ingest("s", other, &[], false).unwrap_err(),
            ServeError::ConfigMismatch { field, .. } if field == "trials"
        ));
        let bad = [IngestRecord {
            instance: 0,
            key: 1,
            value: f64::NAN,
        }];
        assert!(matches!(
            catalog.ingest("s", config(), &bad, false).unwrap_err(),
            ServeError::InvalidRecord { .. }
        ));
        // The slot is still building and still finalizable.
        let (_, ready) = catalog.ingest("s", config(), &[], true).unwrap();
        assert!(ready);
    }

    #[test]
    fn finalize_without_records_is_typed_and_leaves_no_slot() {
        let catalog = SketchCatalog::new();
        assert!(matches!(
            catalog.ingest("empty", config(), &[], true).unwrap_err(),
            ServeError::InvalidConfig { .. }
        ));
        // The failed request must not have pinned a building slot: the name
        // stays free for a later ingest under any configuration.
        assert!(matches!(
            catalog.get("empty").unwrap_err(),
            ServeError::UnknownSketch { .. }
        ));
        assert!(catalog.list().is_empty());
        let mut other = config();
        other.trials = 7;
        let data = paper_example().take_instances(2);
        catalog
            .ingest("empty", other, &records_of(&data), true)
            .unwrap();
        assert!(catalog.get("empty").is_ok());
    }

    #[test]
    fn hostile_instance_indices_are_rejected_before_any_mutation() {
        let catalog = SketchCatalog::new();
        for instance in [MAX_INSTANCES, u64::MAX] {
            let bad = [IngestRecord {
                instance,
                key: 1,
                value: 1.0,
            }];
            assert!(
                matches!(
                    catalog.ingest("s", config(), &bad, true).unwrap_err(),
                    ServeError::InvalidRecord { .. }
                ),
                "instance {instance}"
            );
        }
        assert!(catalog.list().is_empty(), "no slot may have been created");
        // Listing still works afterwards (no poisoned locks).
        let data = paper_example().take_instances(2);
        catalog
            .ingest("s", config(), &records_of(&data), true)
            .unwrap();
        assert_eq!(catalog.list().len(), 1);
    }

    #[test]
    fn resource_caps_are_enforced_on_the_wire_config() {
        let catalog = SketchCatalog::new();
        let data = paper_example().take_instances(2);
        let mut greedy = config();
        greedy.trials = MAX_TRIALS + 1;
        assert!(matches!(
            catalog
                .ingest("s", greedy, &records_of(&data), true)
                .unwrap_err(),
            ServeError::InvalidConfig { .. }
        ));
        let mut greedy = config();
        greedy.shards = MAX_SHARDS + 1;
        assert!(matches!(
            catalog
                .ingest("s", greedy, &records_of(&data), true)
                .unwrap_err(),
            ServeError::InvalidConfig { .. }
        ));
        assert!(catalog.list().is_empty());
        // At the caps themselves the request is accepted.
        let mut maxed = config();
        maxed.trials = 4;
        maxed.shards = MAX_SHARDS;
        catalog
            .ingest("s", maxed, &records_of(&data), true)
            .unwrap();
        assert!(catalog.get("s").is_ok());
    }

    #[test]
    fn listing_is_sorted_and_consistent() {
        let catalog = SketchCatalog::new();
        let data = paper_example().take_instances(2);
        for name in ["zeta", "alpha", "mid"] {
            catalog
                .ingest(name, config(), &records_of(&data), true)
                .unwrap();
        }
        let names: Vec<String> = catalog.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        assert!(catalog.list().iter().all(|i| i.ready));
    }

    #[test]
    fn unknown_names_are_typed() {
        let catalog = SketchCatalog::new();
        assert!(matches!(
            catalog.get("nope").unwrap_err(),
            ServeError::UnknownSketch { .. }
        ));
        let data = paper_example().take_instances(2);
        catalog
            .ingest("s", config(), &records_of(&data), true)
            .unwrap();
        assert!(matches!(
            catalog.estimate("s", "nope", "max_dominance").unwrap_err(),
            ServeError::UnknownEstimator { .. }
        ));
        assert!(matches!(
            catalog.estimate("s", "max_oblivious", "nope").unwrap_err(),
            ServeError::UnknownStatistic { .. }
        ));
        assert!(matches!(
            catalog
                .estimate("s", "max_weighted", "max_dominance")
                .unwrap_err(),
            ServeError::EstimatorMismatch { .. }
        ));
    }
}
