//! # pie-serve — a concurrent sketch-query service over persisted snapshots
//!
//! The paper's estimators are built for exactly one operational shape: a
//! small summary is computed once, then answers many downstream queries.
//! This crate is that serving layer for the workspace — a pure-`std`,
//! multi-threaded TCP service that loads finalized sketches once (from
//! `pie-store` snapshot files or live ingest) and answers concurrent
//! estimation queries with **per-query estimator choice** (HT baseline vs.
//! the Pareto-optimal `L`/`U` families) and statistic choice:
//!
//! * [`Server`] — accept loop + thread-per-connection dispatcher over a
//!   shared, lock-sharded [`SketchCatalog`];
//! * [`ServeClient`] — the blocking client library (one per worker thread;
//!   no async runtime);
//! * [`wire`] — the versioned, length-prefixed binary protocol: one
//!   [`pie_store::frame`] frame per message (magic `PIEW`,
//!   [`wire::WIRE_VERSION`], FNV-1a checksum), payloads in the same
//!   [`pie_store::Encode`]/[`pie_store::Decode`] codec as snapshots;
//! * [`ServeError`] — the typed failure surface: malformed input never
//!   panics, and survivable faults (wrong version, checksum mismatch, bad
//!   payload) leave the connection serving.
//!
//! Requests: `ListCatalog`, `LoadSnapshot`, `IngestBatch`,
//! `Estimate { sketch, estimator, statistic }`, and the multi-tenant
//! engine surface — `Identify { tenant }` (connection-scoped billing
//! identity), `BatchEstimate { sketch, queries }` (many combinations from
//! one shared replay), and `Stats` (cache/queue/tenant observability).
//! Estimation dispatches through the existing `EstimatorRegistry` suites
//! and the shared estimation cores, so a served report is
//! **bit-identical** to running `Pipeline` / `StreamPipeline` in-process
//! on the same configuration — moving estimation behind the wire changes
//! where it runs, not what it returns.  Every estimation request passes
//! the [`pie_engine::QueryEngine`] first: per-tenant token-bucket quotas
//! and a bounded in-flight gate shed overload with the typed
//! [`ServeError::Overloaded`] (the request was *not* executed — always
//! safe to retry, which [`RetryPolicy`] automates), and an
//! invalidation-correct estimate cache serves repeated combinations
//! without recomputing.
//!
//! # Quickstart
//!
//! ```
//! use partial_info_estimators::{CatalogEntry, Scheme};
//! use partial_info_estimators::datagen::paper_example;
//! use pie_serve::{ServeClient, Server};
//!
//! // A server with one preloaded sketch (50 trials over the paper's
//! // two-instance example, sampled obliviously at p = 1/2).
//! let server = Server::bind("127.0.0.1:0").unwrap();
//! let entry = CatalogEntry::build(
//!     paper_example().take_instances(2),
//!     Scheme::oblivious(0.5),
//!     1,
//!     50,
//!     7,
//! )
//! .unwrap();
//! server.catalog().insert("example", entry);
//!
//! // Any number of clients query it concurrently; this one asks for the
//! // max estimators under the max-dominance statistic.
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! let report = client
//!     .estimate("example", "max_oblivious", "max_dominance")
//!     .unwrap();
//! assert_eq!(report.trials, 50);
//! let l = report.get("max_l_2").unwrap();
//! let ht = report.get("max_ht_oblivious").unwrap();
//! assert!(l.variance <= ht.variance, "L never loses to HT");
//! server.shutdown();
//! ```

// `deny` (not `forbid`) because exactly one module — the poll(2) syscall
// shim in `poll::imp::sys` — carries a scoped `allow`: the readiness
// syscall has no safe pure-`std` spelling.  Everything else stays safe.
#![deny(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod client;
mod conn;
pub mod error;
mod poll;
pub mod server;
pub mod wire;

pub use catalog::SketchCatalog;
pub use client::{ClientConfig, IngestAck, RetryPolicy, RetryStats, ServeClient};
pub use error::ServeError;
pub use server::{ObsConfig, Server, ShutdownHandle, DEFAULT_TENANT};
pub use wire::{
    BatchQuery, IngestRecord, Request, Response, SketchConfig, SketchInfo, MAX_BATCH_QUERIES,
    MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION,
};

// The engine tunables taken by [`Server::bind_with`], re-exported so server
// embedders configure quotas without naming `pie-engine` directly.
pub use pie_engine::{EngineConfig, EngineStatsReport, RequestCountRow, TenantQuota};

// The observability vocabulary spoken by the `Metrics` / `QueryTrace`
// requests, re-exported so clients read snapshots and stamp trace contexts
// without naming `pie-obs` directly.
pub use pie_obs::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, SlowQueryRecord,
    SpanRecord, TraceContext,
};
