//! The versioned, length-prefixed binary wire protocol.
//!
//! Every request and response is one frame of the shared
//! [`pie_store::frame`] layer — the same layout as snapshot files (magic,
//! version, payload length, FNV-1a checksum), instantiated with the
//! wire magic [`WIRE_MAGIC`] (`PIEW`) and [`WIRE_VERSION`], and read with a
//! hard payload bound ([`MAX_FRAME_BYTES`]) because the peer is untrusted.
//! Payloads are `pie-store` [`Encode`]/[`Decode`] values, so the value
//! types (schemes, reports, errors) reuse the exact codecs that make
//! snapshots bit-exact.
//!
//! # Version policy
//!
//! [`WIRE_VERSION`] is independent of the snapshot
//! [`pie_store::FORMAT_VERSION`]: the wire can evolve without invalidating
//! files on disk and vice versa.  As with snapshots, any message-layout
//! change bumps the version and peers reject other versions with a typed
//! error.  The 16-byte frame header itself is frozen across versions
//! (see the [`pie_store::frame`] version policy), which is what lets a
//! server *consume* a wrong-version frame whole, answer with a typed
//! [`ServeError::Protocol`], and keep serving the connection.
//!
//! # Recovery contract
//!
//! [`read_request`] tells the connection loop whether the stream is still
//! at a frame boundary after a failure ([`WireFault::fatal`]):
//! checksum mismatches, wrong versions, and payload-decoding failures are
//! survivable; bad magic, oversized length prefixes, truncation, and I/O
//! errors are not (the stream position is unknowable), so the server
//! responds where possible and closes.
//!
//! # Frame extensions
//!
//! A frame payload may carry optional, self-describing **extension
//! blocks** after the encoded message: repeated `(tag: u32, len: u64,
//! bytes[len])` records.  Unknown tags are skipped (forward
//! compatibility); malformed blocks (truncated headers, lengths past the
//! payload end, wrong block sizes) are recoverable typed faults, never
//! panics.  A frame without extensions is **byte-identical** to the
//! pre-extension wire, which is why [`WIRE_VERSION`] is unchanged and
//! every pre-extension golden frame still pins.  The only extension
//! defined today is [`EXT_TRACE_CONTEXT`]: a 16-byte
//! [`TraceContext`] propagating a request's trace across hops (written by
//! [`write_message_traced`]).

use std::io::{Read, Write};

use partial_info_estimators::{PipelineReport, Scheme};
use pie_engine::EngineStatsReport;
use pie_obs::{MetricsSnapshot, SpanRecord, TraceContext};
use pie_store::frame::{read_frame_or_eof, recoverable, write_frame};
use pie_store::{Decode, Encode, StoreError};

use crate::error::ServeError;

/// The four magic bytes every wire frame starts with (`PIEW`).
pub const WIRE_MAGIC: [u8; 4] = *b"PIEW";

/// The wire protocol version this build speaks.  Bump on any message-layout
/// change; peers reject other versions with a typed error instead of
/// misinterpreting bytes.
pub const WIRE_VERSION: u32 = 1;

/// Hard upper bound on one frame's payload.  A hostile length prefix above
/// this is rejected before any payload byte is read.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;

/// One ingested record: `key` contributed `value` in `instance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestRecord {
    /// Index of the instance (e.g. the hour) the record belongs to.
    pub instance: u64,
    /// The record's key.
    pub key: u64,
    /// The record's (pre-aggregated) weight.
    pub value: f64,
}

impl Encode for IngestRecord {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.instance.encode(w)?;
        self.key.encode(w)?;
        self.value.encode(w)
    }
}

impl Decode for IngestRecord {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            instance: u64::decode(r)?,
            key: u64::decode(r)?,
            value: f64::decode(r)?,
        })
    }
}

/// The sampling configuration a sketch is built under — the wire mirror of
/// the catalog entry's experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// The per-instance sampling scheme.
    pub scheme: Scheme,
    /// Number of ingest shards per instance.
    pub shards: u64,
    /// Number of Monte-Carlo trials (one sample set per trial).
    pub trials: u64,
    /// Base hash salt; trial `t` derives its seeds from `base_salt + t`.
    pub base_salt: u64,
}

impl Encode for SketchConfig {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.scheme.encode(w)?;
        self.shards.encode(w)?;
        self.trials.encode(w)?;
        self.base_salt.encode(w)
    }
}

impl Decode for SketchConfig {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            scheme: Scheme::decode(r)?,
            shards: u64::decode(r)?,
            trials: u64::decode(r)?,
            base_salt: u64::decode(r)?,
        })
    }
}

/// One catalog listing row: a sketch's name, configuration, and state.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchInfo {
    /// The sketch's catalog name.
    pub name: String,
    /// The configuration it was (or will be) built under.
    pub config: SketchConfig,
    /// Number of instances (`r`); 0 while no record has arrived.
    pub instances: u64,
    /// Whether the sketch is finalized and answering estimation queries.
    pub ready: bool,
    /// Records buffered so far (building sketches only; 0 once ready).
    pub buffered_records: u64,
}

impl Encode for SketchInfo {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.name.encode(w)?;
        self.config.encode(w)?;
        self.instances.encode(w)?;
        self.ready.encode(w)?;
        self.buffered_records.encode(w)
    }
}

impl Decode for SketchInfo {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            name: String::decode(r)?,
            config: SketchConfig::decode(r)?,
            instances: u64::decode(r)?,
            ready: bool::decode(r)?,
            buffered_records: u64::decode(r)?,
        })
    }
}

/// Most `(estimator, statistic)` combinations one `BatchEstimate` request
/// may carry; larger (or empty) batches are refused with a typed
/// [`ServeError::InvalidConfig`] before any work runs.
pub const MAX_BATCH_QUERIES: usize = 64;

/// One `(estimator, statistic)` combination of a
/// [`Request::BatchEstimate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQuery {
    /// Estimator suite name (see [`pie_core::suite::SUITE_NAMES`]).
    pub estimator: String,
    /// Statistic name (see
    /// [`Statistic::NAMES`](partial_info_estimators::Statistic::NAMES)).
    pub statistic: String,
}

impl Encode for BatchQuery {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.estimator.encode(w)?;
        self.statistic.encode(w)
    }
}

impl Decode for BatchQuery {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(Self {
            estimator: String::decode(r)?,
            statistic: String::decode(r)?,
        })
    }
}

/// A client request, one per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// List every catalog entry (name, configuration, state).
    ListCatalog,
    /// Load a persisted [`CatalogEntry`](partial_info_estimators::CatalogEntry)
    /// snapshot file from the **server's** filesystem under `name`
    /// (replacing any same-named entry atomically).
    LoadSnapshot {
        /// The catalog name to register the entry under.
        name: String,
        /// Path of the snapshot file on the server's filesystem.
        path: String,
    },
    /// Append records to a building sketch (created on first batch with
    /// `config`); `last: true` finalizes it into a servable entry.
    IngestBatch {
        /// The sketch's catalog name.
        sketch: String,
        /// The sampling configuration (must agree across batches).
        config: SketchConfig,
        /// The records of this batch (may be empty, e.g. a bare finalize).
        records: Vec<IngestRecord>,
        /// Whether this is the final batch.
        last: bool,
    },
    /// Estimate over a finalized sketch with a per-query estimator suite
    /// and statistic choice.
    Estimate {
        /// The sketch's catalog name.
        sketch: String,
        /// Estimator suite name (see [`pie_core::suite::SUITE_NAMES`]).
        estimator: String,
        /// Statistic name (see
        /// [`Statistic::NAMES`](partial_info_estimators::Statistic::NAMES)).
        statistic: String,
    },
    /// Names the tenant this connection's subsequent requests bill to
    /// (admission quotas and `Stats` counters).  Connections that never
    /// identify share the server's default tenant.
    Identify {
        /// The tenant name.
        tenant: String,
    },
    /// Answer many `(estimator, statistic)` combinations against one
    /// finalized sketch from a **single** replay over its samples.  Each
    /// report is bit-identical to the corresponding [`Request::Estimate`].
    BatchEstimate {
        /// The sketch's catalog name.
        sketch: String,
        /// The combinations, at most [`MAX_BATCH_QUERIES`] of them.
        queries: Vec<BatchQuery>,
    },
    /// Fetch the engine's observability snapshot: cache hit rate, queue
    /// depth, shed counts, per-tenant counters.
    Stats,
    /// Register an encoded
    /// [`CatalogEntry`](partial_info_estimators::CatalogEntry) under `name`
    /// (replacing any same-named entry atomically), shipping the bytes
    /// **in-band** — unlike [`Request::LoadSnapshot`], nothing has to exist
    /// on the server's filesystem.  This is how the cluster router
    /// replicates an entry to the nodes that own it on the hash ring.
    PutSnapshot {
        /// The catalog name to register the entry under.
        name: String,
        /// The entry, encoded with [`pie_store::encode_to_vec`].
        snapshot: Vec<u8>,
    },
    /// Liveness probe; answered with [`Response::Pong`] and touching
    /// neither the catalog nor the engine.  The cluster router uses it to
    /// detect dead nodes cheaply before failing over.
    Ping,
    /// Fetch the server's full metrics-registry snapshot (exact counters,
    /// gauges, and latency histograms); answered with
    /// [`Response::Metrics`].  Node snapshots merge exactly via
    /// [`MetricsSnapshot::absorb`], which is how the cluster router's
    /// `fleet_metrics` sees the whole fleet in one value.
    Metrics,
    /// Fetch the recent spans recorded for one trace id from the server's
    /// bounded trace ring; answered with [`Response::Traces`].
    QueryTrace {
        /// The trace id the spans were recorded under.
        trace_id: u64,
    },
}

const REQ_LIST: u32 = 0;
const REQ_LOAD: u32 = 1;
const REQ_INGEST: u32 = 2;
const REQ_ESTIMATE: u32 = 3;
const REQ_IDENTIFY: u32 = 4;
const REQ_BATCH: u32 = 5;
const REQ_STATS: u32 = 6;
const REQ_PUT: u32 = 7;
const REQ_PING: u32 = 8;
const REQ_METRICS: u32 = 9;
const REQ_QUERY_TRACE: u32 = 10;

impl Encode for Request {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        match self {
            Self::ListCatalog => REQ_LIST.encode(w),
            Self::LoadSnapshot { name, path } => {
                REQ_LOAD.encode(w)?;
                name.encode(w)?;
                path.encode(w)
            }
            Self::IngestBatch {
                sketch,
                config,
                records,
                last,
            } => {
                REQ_INGEST.encode(w)?;
                sketch.encode(w)?;
                config.encode(w)?;
                records.encode(w)?;
                last.encode(w)
            }
            Self::Estimate {
                sketch,
                estimator,
                statistic,
            } => {
                REQ_ESTIMATE.encode(w)?;
                sketch.encode(w)?;
                estimator.encode(w)?;
                statistic.encode(w)
            }
            Self::Identify { tenant } => {
                REQ_IDENTIFY.encode(w)?;
                tenant.encode(w)
            }
            Self::BatchEstimate { sketch, queries } => {
                REQ_BATCH.encode(w)?;
                sketch.encode(w)?;
                queries.encode(w)
            }
            Self::Stats => REQ_STATS.encode(w),
            Self::PutSnapshot { name, snapshot } => {
                REQ_PUT.encode(w)?;
                name.encode(w)?;
                snapshot.encode(w)
            }
            Self::Ping => REQ_PING.encode(w),
            Self::Metrics => REQ_METRICS.encode(w),
            Self::QueryTrace { trace_id } => {
                REQ_QUERY_TRACE.encode(w)?;
                trace_id.encode(w)
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(match u32::decode(r)? {
            REQ_LIST => Self::ListCatalog,
            REQ_LOAD => Self::LoadSnapshot {
                name: String::decode(r)?,
                path: String::decode(r)?,
            },
            REQ_INGEST => Self::IngestBatch {
                sketch: String::decode(r)?,
                config: SketchConfig::decode(r)?,
                records: Vec::decode(r)?,
                last: bool::decode(r)?,
            },
            REQ_ESTIMATE => Self::Estimate {
                sketch: String::decode(r)?,
                estimator: String::decode(r)?,
                statistic: String::decode(r)?,
            },
            REQ_IDENTIFY => Self::Identify {
                tenant: String::decode(r)?,
            },
            REQ_BATCH => Self::BatchEstimate {
                sketch: String::decode(r)?,
                queries: Vec::decode(r)?,
            },
            REQ_STATS => Self::Stats,
            REQ_PUT => Self::PutSnapshot {
                name: String::decode(r)?,
                snapshot: Vec::decode(r)?,
            },
            REQ_PING => Self::Ping,
            REQ_METRICS => Self::Metrics,
            REQ_QUERY_TRACE => Self::QueryTrace {
                trace_id: u64::decode(r)?,
            },
            tag => {
                return Err(StoreError::InvalidTag {
                    what: "Request",
                    tag,
                })
            }
        })
    }
}

/// A server response, one per frame, mirroring the request that caused it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::ListCatalog`]: every entry, sorted by name.
    Catalog(Vec<SketchInfo>),
    /// Answer to [`Request::LoadSnapshot`]: the loaded entry's listing row.
    Loaded(SketchInfo),
    /// Answer to [`Request::IngestBatch`]: the sketch's updated state.
    Ingested {
        /// The sketch's catalog name.
        sketch: String,
        /// Records buffered so far (0 once finalized).
        buffered_records: u64,
        /// Whether the sketch is now finalized and servable.
        ready: bool,
    },
    /// Answer to [`Request::Estimate`]: the full report, bit-identical to
    /// the in-process pipelines on the same configuration.
    Estimated(PipelineReport),
    /// Any request that failed, with the typed reason.
    Error(ServeError),
    /// Answer to [`Request::Identify`]: echoes the now-active tenant.
    Identified {
        /// The tenant this connection now bills to.
        tenant: String,
    },
    /// Answer to [`Request::BatchEstimate`]: one report per query, in
    /// request order, each bit-identical to its single-`Estimate` twin.
    BatchEstimated(Vec<PipelineReport>),
    /// Answer to [`Request::Stats`]: the engine observability snapshot.
    Stats(EngineStatsReport),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Metrics`]: the full registry snapshot.
    Metrics(MetricsSnapshot),
    /// Answer to [`Request::QueryTrace`]: every retained span of the
    /// requested trace id, oldest first.
    Traces(Vec<SpanRecord>),
}

const RESP_CATALOG: u32 = 0;
const RESP_LOADED: u32 = 1;
const RESP_INGESTED: u32 = 2;
const RESP_ESTIMATED: u32 = 3;
const RESP_ERROR: u32 = 4;
const RESP_IDENTIFIED: u32 = 5;
const RESP_BATCH: u32 = 6;
const RESP_STATS: u32 = 7;
const RESP_PONG: u32 = 8;
const RESP_METRICS: u32 = 9;
const RESP_TRACES: u32 = 10;

impl Encode for Response {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        match self {
            Self::Catalog(entries) => {
                RESP_CATALOG.encode(w)?;
                entries.encode(w)
            }
            Self::Loaded(info) => {
                RESP_LOADED.encode(w)?;
                info.encode(w)
            }
            Self::Ingested {
                sketch,
                buffered_records,
                ready,
            } => {
                RESP_INGESTED.encode(w)?;
                sketch.encode(w)?;
                buffered_records.encode(w)?;
                ready.encode(w)
            }
            Self::Estimated(report) => {
                RESP_ESTIMATED.encode(w)?;
                report.encode(w)
            }
            Self::Error(error) => {
                RESP_ERROR.encode(w)?;
                error.encode(w)
            }
            Self::Identified { tenant } => {
                RESP_IDENTIFIED.encode(w)?;
                tenant.encode(w)
            }
            Self::BatchEstimated(reports) => {
                RESP_BATCH.encode(w)?;
                reports.encode(w)
            }
            Self::Stats(stats) => {
                RESP_STATS.encode(w)?;
                stats.encode(w)
            }
            Self::Pong => RESP_PONG.encode(w),
            Self::Metrics(snapshot) => {
                RESP_METRICS.encode(w)?;
                snapshot.encode(w)
            }
            Self::Traces(spans) => {
                RESP_TRACES.encode(w)?;
                spans.encode(w)
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(match u32::decode(r)? {
            RESP_CATALOG => Self::Catalog(Vec::decode(r)?),
            RESP_LOADED => Self::Loaded(SketchInfo::decode(r)?),
            RESP_INGESTED => Self::Ingested {
                sketch: String::decode(r)?,
                buffered_records: u64::decode(r)?,
                ready: bool::decode(r)?,
            },
            RESP_ESTIMATED => Self::Estimated(PipelineReport::decode(r)?),
            RESP_ERROR => Self::Error(ServeError::decode(r)?),
            RESP_IDENTIFIED => Self::Identified {
                tenant: String::decode(r)?,
            },
            RESP_BATCH => Self::BatchEstimated(Vec::decode(r)?),
            RESP_STATS => Self::Stats(EngineStatsReport::decode(r)?),
            RESP_PONG => Self::Pong,
            RESP_METRICS => Self::Metrics(MetricsSnapshot::decode(r)?),
            RESP_TRACES => Self::Traces(Vec::decode(r)?),
            tag => {
                return Err(StoreError::InvalidTag {
                    what: "Response",
                    tag,
                })
            }
        })
    }
}

/// A failed frame or message read, with the resynchronization verdict.
#[derive(Debug)]
pub struct WireFault {
    /// The underlying framing or decoding error.
    pub error: StoreError,
    /// Whether the stream position is lost (`true`: close the connection
    /// after responding; `false`: the next frame can still be served).
    pub fatal: bool,
}

impl WireFault {
    fn from(error: StoreError) -> Self {
        let fatal = !recoverable(&error);
        Self { error, fatal }
    }

    /// The typed error a server should answer this fault with.
    #[must_use]
    pub fn to_serve_error(&self) -> ServeError {
        ServeError::protocol(&self.error)
    }
}

/// Extension-block tag of the 16-byte trace context (`trace_id` then
/// `span_id`, both `u64` little-endian); see the
/// [frame-extensions note](self#frame-extensions).
pub const EXT_TRACE_CONTEXT: u32 = 1;

/// Encodes `message` into one wire frame on `sink`.
///
/// # Errors
/// Propagates encoding and I/O failures.
pub fn write_message<T: Encode + ?Sized>(
    sink: &mut impl Write,
    message: &T,
) -> Result<(), StoreError> {
    write_message_traced(sink, message, None)
}

/// Encodes `message` into one wire frame, appending a
/// [`EXT_TRACE_CONTEXT`] extension block when `trace` is set.  With
/// `trace: None` the frame is byte-identical to [`write_message`].
///
/// # Errors
/// Propagates encoding and I/O failures.
pub fn write_message_traced<T: Encode + ?Sized>(
    sink: &mut impl Write,
    message: &T,
    trace: Option<&TraceContext>,
) -> Result<(), StoreError> {
    let mut payload = Vec::new();
    message.encode(&mut payload)?;
    if let Some(ctx) = trace {
        EXT_TRACE_CONTEXT.encode(&mut payload)?;
        16u64.encode(&mut payload)?;
        ctx.encode(&mut payload)?;
    }
    write_frame(sink, WIRE_MAGIC, WIRE_VERSION, &payload)
}

/// Decodes one value from a fully-validated frame payload, requiring the
/// payload to be consumed exactly.
pub(crate) fn decode_payload<T: Decode>(payload: &[u8]) -> Result<T, StoreError> {
    let mut cursor = payload;
    let value = T::decode(&mut (&mut cursor as &mut dyn Read))?;
    if !cursor.is_empty() {
        return Err(StoreError::InvalidValue {
            what: "trailing bytes after wire message",
        });
    }
    Ok(value)
}

/// Decodes one value plus any trailing extension blocks from a
/// fully-validated frame payload.  Unknown extension tags are skipped;
/// malformed blocks are typed [`StoreError`]s (all recoverable — the
/// frame was already consumed whole).
pub(crate) fn decode_payload_with_trace<T: Decode>(
    payload: &[u8],
) -> Result<(T, Option<TraceContext>), StoreError> {
    let mut cursor = payload;
    let value = T::decode(&mut (&mut cursor as &mut dyn Read))?;
    let mut trace = None;
    while !cursor.is_empty() {
        if cursor.len() < 12 {
            return Err(StoreError::InvalidValue {
                what: "truncated wire extension header",
            });
        }
        let tag = u32::decode(&mut (&mut cursor as &mut dyn Read))?;
        let len = u64::decode(&mut (&mut cursor as &mut dyn Read))?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&len| len <= cursor.len())
            .ok_or(StoreError::InvalidValue {
                what: "wire extension length runs past the payload",
            })?;
        let (body, rest) = cursor.split_at(len);
        cursor = rest;
        // Unknown tags are skipped: older servers keep serving peers that
        // speak newer optional extensions.
        if tag == EXT_TRACE_CONTEXT {
            if body.len() != 16 {
                return Err(StoreError::InvalidValue {
                    what: "trace-context extension must be exactly 16 bytes",
                });
            }
            if trace.is_some() {
                return Err(StoreError::InvalidValue {
                    what: "duplicate trace-context extension",
                });
            }
            let mut body = body;
            trace = Some(TraceContext::decode(&mut (&mut body as &mut dyn Read))?);
        }
    }
    Ok((value, trace))
}

/// Reads one message frame, distinguishing a clean peer hang-up (`Ok(None)`)
/// from malformed input (an [`WireFault`] with its recovery verdict).
///
/// # Errors
/// Any framing or decoding failure, wrapped with the fatality verdict.
pub fn read_message<T: Decode>(src: &mut impl Read) -> Result<Option<T>, WireFault> {
    match read_frame_or_eof(src, WIRE_MAGIC, WIRE_VERSION, MAX_FRAME_BYTES) {
        Ok(None) => Ok(None),
        Ok(Some(payload)) => match decode_payload(&payload) {
            Ok(value) => Ok(Some(value)),
            // The frame was consumed whole; only its contents were bad.
            Err(error) => Err(WireFault::from(error)),
        },
        Err(error) => Err(WireFault::from(error)),
    }
}

/// Reads one [`Request`] (server side).
///
/// # Errors
/// As [`read_message`].
pub fn read_request(src: &mut impl Read) -> Result<Option<Request>, WireFault> {
    read_message(src)
}

/// Reads one [`Response`] (client side).
///
/// # Errors
/// As [`read_message`].
pub fn read_response(src: &mut impl Read) -> Result<Option<Response>, WireFault> {
    read_message(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partial_info_estimators::{EstimatorReport, Scheme};
    use pie_analysis_evaluation_stub::evaluation;

    /// `pie-analysis` is not a dependency of this crate; build an
    /// `Evaluation` through the umbrella re-export instead.
    mod pie_analysis_evaluation_stub {
        use partial_info_estimators::analysis::{Evaluation, RunningStats};

        pub fn evaluation() -> Evaluation {
            let mut stats = RunningStats::new();
            stats.push(1.0);
            stats.push(3.0);
            Evaluation::from_stats(&stats, 2.0)
        }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::ListCatalog,
            Request::LoadSnapshot {
                name: "traffic".into(),
                path: "/tmp/traffic.pies".into(),
            },
            Request::IngestBatch {
                sketch: "live".into(),
                config: SketchConfig {
                    scheme: Scheme::pps(150.0),
                    shards: 2,
                    trials: 8,
                    base_salt: 5,
                },
                records: vec![IngestRecord {
                    instance: 0,
                    key: 42,
                    value: 7.5,
                }],
                last: true,
            },
            Request::Estimate {
                sketch: "traffic".into(),
                estimator: "max_weighted".into(),
                statistic: "max_dominance".into(),
            },
            Request::Identify {
                tenant: "acme".into(),
            },
            Request::BatchEstimate {
                sketch: "traffic".into(),
                queries: vec![
                    BatchQuery {
                        estimator: "max_weighted".into(),
                        statistic: "max_dominance".into(),
                    },
                    BatchQuery {
                        estimator: "max_weighted".into(),
                        statistic: "distinct_count".into(),
                    },
                ],
            },
            Request::Stats,
            Request::PutSnapshot {
                name: "replica".into(),
                snapshot: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Request::Ping,
            Request::Metrics,
            Request::QueryTrace {
                trace_id: 0xFEED_F00D,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        let info = SketchInfo {
            name: "traffic".into(),
            config: SketchConfig {
                scheme: Scheme::oblivious(0.5),
                shards: 1,
                trials: 4,
                base_salt: 0,
            },
            instances: 2,
            ready: true,
            buffered_records: 0,
        };
        vec![
            Response::Catalog(vec![info.clone()]),
            Response::Loaded(info),
            Response::Ingested {
                sketch: "live".into(),
                buffered_records: 10,
                ready: false,
            },
            Response::Estimated(partial_info_estimators::PipelineReport {
                statistic: "max_dominance".into(),
                truth: 10.0,
                trials: 2,
                estimators: vec![EstimatorReport {
                    name: "max_ht_pps".into(),
                    evaluation: evaluation(),
                }],
            }),
            Response::Error(ServeError::UnknownSketch {
                name: "gone".into(),
            }),
            Response::Identified {
                tenant: "acme".into(),
            },
            Response::BatchEstimated(vec![partial_info_estimators::PipelineReport {
                statistic: "distinct_count".into(),
                truth: 4.0,
                trials: 2,
                estimators: vec![EstimatorReport {
                    name: "or_ht".into(),
                    evaluation: evaluation(),
                }],
            }]),
            Response::Stats(EngineStatsReport {
                cache: pie_engine::CacheStats {
                    hits: 3,
                    misses: 1,
                    evictions: 0,
                    invalidated: 2,
                    entries: 1,
                    capacity: 64,
                },
                queue: pie_engine::QueueStats {
                    inflight: 1,
                    queued: 0,
                    shed: 4,
                    max_inflight: 8,
                    max_queue: 16,
                },
                tenants: vec![pie_engine::TenantStatsRow {
                    tenant: "acme".into(),
                    queries_admitted: 9,
                    queries_shed: 4,
                    ingest_records_admitted: 100,
                    ingests_shed: 0,
                }],
                requests: vec![pie_engine::RequestCountRow {
                    request: "estimate".into(),
                    count: 9,
                }],
                uptime_ms: 1_234,
                threads_available: 8,
                version: "0.9.0".into(),
            }),
            Response::Pong,
            Response::Metrics(sample_metrics_snapshot()),
            Response::Traces(vec![SpanRecord {
                trace_id: 11,
                span_id: 3,
                parent_span_id: 1,
                node: "127.0.0.1:4100".into(),
                stage: "trial_replay".into(),
                start_nanos: 2_000,
                duration_nanos: 450,
            }]),
        ]
    }

    fn sample_metrics_snapshot() -> MetricsSnapshot {
        let registry = pie_obs::MetricsRegistry::new();
        registry.counter("requests_total").add(12);
        registry.gauge("worker_queue_depth").set(2);
        registry.histogram("request_nanos").record(1_500);
        registry.snapshot()
    }

    #[test]
    fn every_message_roundtrips_through_a_frame() {
        for req in sample_requests() {
            let mut bytes = Vec::new();
            write_message(&mut bytes, &req).unwrap();
            let back = read_request(&mut bytes.as_slice()).unwrap().unwrap();
            assert_eq!(back, req);
        }
        for resp in sample_responses() {
            let mut bytes = Vec::new();
            write_message(&mut bytes, &resp).unwrap();
            let back = read_response(&mut bytes.as_slice()).unwrap().unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        let empty: &[u8] = &[];
        assert!(read_request(&mut { empty }).unwrap().is_none());
    }

    #[test]
    fn trailing_payload_bytes_are_a_recoverable_fault() {
        let mut payload = Vec::new();
        Request::ListCatalog.encode(&mut payload).unwrap();
        payload.push(0xAB);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, WIRE_MAGIC, WIRE_VERSION, &payload).unwrap();
        let fault = read_request(&mut bytes.as_slice()).unwrap_err();
        assert!(!fault.fatal);
        assert!(matches!(fault.error, StoreError::InvalidValue { .. }));
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut bytes = Vec::new();
        write_message(&mut bytes, &Request::ListCatalog).unwrap();
        bytes[8..16].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let fault = read_request(&mut bytes.as_slice()).unwrap_err();
        assert!(fault.fatal);
        assert!(matches!(fault.error, StoreError::FrameTooLarge { .. }));
    }

    #[test]
    fn untraced_frames_are_byte_identical_and_traced_frames_roundtrip() {
        let request = Request::Estimate {
            sketch: "traffic".into(),
            estimator: "max_weighted".into(),
            statistic: "max_dominance".into(),
        };
        let mut plain = Vec::new();
        write_message(&mut plain, &request).unwrap();
        let mut untraced = Vec::new();
        write_message_traced(&mut untraced, &request, None).unwrap();
        assert_eq!(plain, untraced, "absent trace must not change the frame");

        let ctx = TraceContext {
            trace_id: 0xABCD,
            span_id: 9,
        };
        let mut traced = Vec::new();
        write_message_traced(&mut traced, &request, Some(&ctx)).unwrap();
        assert_ne!(plain, traced);
        // The payload sits between the 16-byte frame header and the
        // trailing 8-byte checksum.
        let (back, trace) =
            decode_payload_with_trace::<Request>(&traced[16..traced.len() - 8]).unwrap();
        assert_eq!(back, request);
        assert_eq!(trace, Some(ctx));
        // An untraced payload decodes with no trace.
        let (back, trace) =
            decode_payload_with_trace::<Request>(&plain[16..plain.len() - 8]).unwrap();
        assert_eq!(back, request);
        assert_eq!(trace, None);
    }

    #[test]
    fn unknown_extensions_are_skipped() {
        let mut payload = Vec::new();
        Request::Ping.encode(&mut payload).unwrap();
        9999u32.encode(&mut payload).unwrap();
        3u64.encode(&mut payload).unwrap();
        payload.extend_from_slice(&[1, 2, 3]);
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
        };
        EXT_TRACE_CONTEXT.encode(&mut payload).unwrap();
        16u64.encode(&mut payload).unwrap();
        ctx.encode(&mut payload).unwrap();
        let (back, trace) = decode_payload_with_trace::<Request>(&payload).unwrap();
        assert_eq!(back, Request::Ping);
        assert_eq!(trace, Some(ctx));
    }

    #[test]
    fn malformed_extensions_are_typed_faults() {
        let base = {
            let mut payload = Vec::new();
            Request::Ping.encode(&mut payload).unwrap();
            payload
        };

        // Truncated header: fewer than 12 bytes of extension remain.
        let mut truncated = base.clone();
        truncated.extend_from_slice(&[0xAB; 5]);
        assert!(matches!(
            decode_payload_with_trace::<Request>(&truncated),
            Err(StoreError::InvalidValue {
                what: "truncated wire extension header"
            })
        ));

        // Declared length runs past the end of the payload.
        let mut overlong = base.clone();
        EXT_TRACE_CONTEXT.encode(&mut overlong).unwrap();
        1_000u64.encode(&mut overlong).unwrap();
        overlong.push(0);
        assert!(matches!(
            decode_payload_with_trace::<Request>(&overlong),
            Err(StoreError::InvalidValue {
                what: "wire extension length runs past the payload"
            })
        ));

        // Trace-context body of the wrong size.
        let mut short_body = base.clone();
        EXT_TRACE_CONTEXT.encode(&mut short_body).unwrap();
        8u64.encode(&mut short_body).unwrap();
        short_body.extend_from_slice(&[0; 8]);
        assert!(matches!(
            decode_payload_with_trace::<Request>(&short_body),
            Err(StoreError::InvalidValue {
                what: "trace-context extension must be exactly 16 bytes"
            })
        ));

        // A duplicated trace context is rejected.
        let mut duplicated = base;
        let ctx = TraceContext {
            trace_id: 1,
            span_id: 2,
        };
        for _ in 0..2 {
            EXT_TRACE_CONTEXT.encode(&mut duplicated).unwrap();
            16u64.encode(&mut duplicated).unwrap();
            ctx.encode(&mut duplicated).unwrap();
        }
        assert!(matches!(
            decode_payload_with_trace::<Request>(&duplicated),
            Err(StoreError::InvalidValue {
                what: "duplicate trace-context extension"
            })
        ));
    }

    #[test]
    fn wrong_version_is_recoverable_and_consumes_the_frame() {
        let mut bytes = Vec::new();
        write_message(&mut bytes, &Request::ListCatalog).unwrap();
        let mut tail = Vec::new();
        write_message(&mut tail, &Request::ListCatalog).unwrap();
        bytes[4] = 77;
        bytes.extend_from_slice(&tail);
        let mut src = bytes.as_slice();
        let fault = read_request(&mut src).unwrap_err();
        assert!(!fault.fatal, "{}", fault.error);
        assert!(read_request(&mut src).unwrap().is_some());
    }
}
