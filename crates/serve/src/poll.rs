//! Stateful readiness polling for the multiplexed server: a thin,
//! FFI-free shim over the kernel's `epoll(7)` interface.
//!
//! The event loop needs one primitive: "these sockets, these directions —
//! wake me with whichever become ready".  [`Poller`] provides it the
//! stateful way: interest is registered **once** per socket (and
//! re-registered only when it changes), and each [`Poller::wait`] costs
//! O(ready), not O(registered) — holding thousands of mostly-idle
//! connections is free per wakeup.  Registrations carry a caller-chosen
//! `token` (the connection id) that comes back in each [`Event`], so
//! readiness needs no descriptor lookup.  Semantics are level-triggered:
//! a socket stays ready until the condition is drained.
//!
//! On Linux the implementation issues the raw `epoll` system calls
//! directly from stable inline assembly — no `libc` crate, no C shim,
//! pure `std` otherwise (the workspace vendors all of its dependencies,
//! so an FFI crate is not on the table).  The `epoll_event` ABI pinned by
//! hand has been frozen since Linux 2.6, which is what makes pinning it
//! sound.
//!
//! On platforms without the syscall shim the poller degrades to a
//! **level-triggered busy-poll fallback**: sleep one millisecond, then
//! report every registered socket ready in the directions it asked for.
//! Spurious readiness is harmless by construction — every socket is
//! nonblocking, so a not-actually-ready one answers `WouldBlock` and the
//! connection state machine simply keeps its state.  The fallback trades
//! idle CPU for portability; the syscall path is what CI and production
//! run.

use std::io;

/// The raw file-descriptor type polled on ([`std::os::fd::RawFd`] on Unix;
/// a placeholder on other platforms, where the fallback ignores it).
#[cfg(unix)]
pub type Fd = std::os::fd::RawFd;
/// See the Unix definition.
#[cfg(not(unix))]
pub type Fd = i32;

/// The raw descriptor of a socket — the handle a [`Poller`] watches.
#[cfg(unix)]
pub fn fd_of<S: std::os::fd::AsRawFd>(socket: &S) -> Fd {
    socket.as_raw_fd()
}

/// Fallback: the busy-poll path never inspects descriptors.
#[cfg(not(unix))]
pub fn fd_of<S>(_socket: &S) -> Fd {
    0
}

/// One readiness notification from [`Poller::wait`]: the `token` the socket
/// was registered under, and which of its registered directions are ready.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen identifier passed to [`Poller::update`].
    pub token: u64,
    /// A read (or hang-up/error, which a read surfaces) is ready — reported
    /// only when the registration asked for reads.
    pub readable: bool,
    /// A write is ready (or the socket errored while only writes were
    /// wanted) — reported only when the registration asked for writes.
    pub writable: bool,
}

/// Stateful readiness: register each socket once, pay O(ready) per wakeup.
///
/// On Linux this is an `epoll` instance; interest changes issue one
/// `epoll_ctl` each, and [`Poller::wait`] returns only the sockets that are
/// actually ready.  Elsewhere it keeps an interest table and busy-polls.
///
/// Error conditions on a socket (`EPOLLERR`/`EPOLLHUP`) are folded into
/// whichever direction the registration asked for (read preferred): the
/// next I/O attempt surfaces the real `io::Error` or EOF, which is where
/// the connection machinery already handles it.  Callers **must**
/// [`Poller::remove`] a socket before closing it: the kernel drops closed
/// descriptors from the set automatically, but the poller's own table
/// would otherwise go stale and silently mis-handle a reused descriptor
/// number.
pub struct Poller {
    inner: imp::PollerImpl,
    /// fd → (token, want_read, want_write): the source of truth for what
    /// is registered; keeps unchanged updates syscall-free.
    interest: std::collections::HashMap<Fd, (u64, bool, bool)>,
    /// token → (want_read, want_write): the same registrations keyed the
    /// way wakeups arrive, so event translation is O(1) per ready socket.
    /// Tokens must therefore be unique across live registrations.
    tokens: std::collections::HashMap<u64, (bool, bool)>,
    events: Vec<Event>,
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    /// Propagates kernel failure to allocate the epoll instance (the
    /// fallback backend is infallible).
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: imp::PollerImpl::new()?,
            interest: std::collections::HashMap::new(),
            tokens: std::collections::HashMap::new(),
            events: Vec::new(),
        })
    }

    /// Declares the directions `fd` currently cares about, identified in
    /// events by `token`.  Idempotent and incremental: registering an
    /// unchanged interest is free (no syscall); changing it issues exactly
    /// one; asking for neither direction deregisters the socket.
    ///
    /// # Errors
    /// Propagates kernel registration failures.
    pub fn update(
        &mut self,
        fd: Fd,
        token: u64,
        want_read: bool,
        want_write: bool,
    ) -> io::Result<()> {
        match self.interest.get(&fd).copied() {
            Some(current) if current == (token, want_read, want_write) => Ok(()),
            Some((old_token, _, _)) if want_read || want_write => {
                self.inner.modify(fd, token, want_read, want_write)?;
                self.interest.insert(fd, (token, want_read, want_write));
                if old_token != token {
                    self.tokens.remove(&old_token);
                }
                self.tokens.insert(token, (want_read, want_write));
                Ok(())
            }
            Some((old_token, _, _)) => {
                self.inner.deregister(fd);
                self.interest.remove(&fd);
                self.tokens.remove(&old_token);
                Ok(())
            }
            None if want_read || want_write => {
                self.inner.register(fd, token, want_read, want_write)?;
                self.interest.insert(fd, (token, want_read, want_write));
                self.tokens.insert(token, (want_read, want_write));
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Forgets `fd` entirely.  Call this *before* closing the socket, even
    /// though the kernel auto-removes closed descriptors — see the type
    /// docs.  Removing an unregistered descriptor is a no-op.
    pub fn remove(&mut self, fd: Fd) {
        if let Some((token, _, _)) = self.interest.remove(&fd) {
            self.tokens.remove(&token);
            self.inner.deregister(fd);
        }
    }

    /// Blocks until at least one registered socket is ready or `timeout_ms`
    /// elapses; returns the ready set (empty on timeout or `EINTR`).
    ///
    /// # Errors
    /// Propagates unexpected kernel-level wait failures.
    pub fn wait(&mut self, timeout_ms: u32) -> io::Result<&[Event]> {
        self.events.clear();
        self.inner
            .wait(&self.interest, &self.tokens, timeout_ms, &mut self.events)?;
        Ok(&self.events)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::{Event, Fd};
    use std::collections::HashMap;
    use std::io;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x8_0000;
    const EINTR: i64 = 4;
    /// Upper bound on events surfaced per wakeup; the rest arrive on the
    /// next call (epoll is level-triggered, nothing is lost).
    const MAX_EVENTS: usize = 1024;

    /// The kernel's `struct epoll_event`.  On x86-64 the kernel declares it
    /// packed (a 32-bit-compat relic); everywhere else it has natural
    /// alignment.  Getting this wrong corrupts the `data` field, so it is
    /// pinned per-architecture exactly as the kernel headers do.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Linux backend for [`super::Poller`]: one long-lived epoll instance.
    pub(super) struct PollerImpl {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl PollerImpl {
        pub(super) fn new() -> io::Result<Self> {
            let ret = sys::epoll_create1(EPOLL_CLOEXEC);
            if ret < 0 {
                return Err(os_error(ret));
            }
            Ok(Self {
                epfd: i32::try_from(ret).unwrap_or_default(),
                buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        pub(super) fn register(
            &mut self,
            fd: Fd,
            token: u64,
            want_read: bool,
            want_write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, want_read, want_write)
        }

        pub(super) fn modify(
            &mut self,
            fd: Fd,
            token: u64,
            want_read: bool,
            want_write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, want_read, want_write)
        }

        pub(super) fn deregister(&mut self, fd: Fd) {
            // Failure is benign here: a closed descriptor is already gone
            // from the kernel's set.
            let mut event = EpollEvent { events: 0, data: 0 };
            let _ = sys::epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event);
        }

        fn ctl(
            &mut self,
            op: i32,
            fd: Fd,
            token: u64,
            want_read: bool,
            want_write: bool,
        ) -> io::Result<()> {
            let mut event = EpollEvent {
                events: if want_read { EPOLLIN } else { 0 } | if want_write { EPOLLOUT } else { 0 },
                data: token,
            };
            let ret = sys::epoll_ctl(self.epfd, op, fd, &mut event);
            if ret < 0 {
                return Err(os_error(ret));
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            _interest: &HashMap<Fd, (u64, bool, bool)>,
            tokens: &HashMap<u64, (bool, bool)>,
            timeout_ms: u32,
            out: &mut Vec<Event>,
        ) -> io::Result<()> {
            let ret = sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms);
            if ret == -EINTR {
                return Ok(());
            }
            if ret < 0 {
                return Err(os_error(ret));
            }
            let count = usize::try_from(ret).unwrap_or(0).min(self.buf.len());
            // Error/hang-up conditions fold into a *registered* direction
            // only (read preferred): a socket whose reads are paused by
            // backpressure must not be woken readable when nothing will
            // drain it, or a level-triggered hang-up would spin the loop.
            for raw in &self.buf[..count] {
                let token = raw.data;
                let events = raw.events;
                let (want_read, want_write) = tokens.get(&token).copied().unwrap_or((true, true));
                let fault = events & (EPOLLERR | EPOLLHUP) != 0;
                let readable = want_read && (events & EPOLLIN != 0 || fault);
                let writable = want_write && (events & EPOLLOUT != 0 || (fault && !want_read));
                if readable || writable {
                    out.push(Event {
                        token,
                        readable,
                        writable,
                    });
                }
            }
            Ok(())
        }
    }

    impl Drop for PollerImpl {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }

    fn os_error(ret: i64) -> io::Error {
        io::Error::from_raw_os_error(i32::try_from(-ret).unwrap_or(0))
    }

    /// The raw system calls.  This is the one corner of the workspace that
    /// needs `unsafe`: handing the kernel pointers to live
    /// `epoll_event` memory.  Soundness: every buffer outlives its call,
    /// the kernel writes only within the bounds it is given, and the
    /// syscall ABIs (numbers, registers, clobbers, error convention) are
    /// architectural constants.
    #[allow(unsafe_code)]
    mod sys {
        use super::EpollEvent;

        /// Generic 4-argument syscall, the shape every epoll call fits
        /// (unused arguments pass zero).
        #[cfg(target_arch = "x86_64")]
        fn syscall4(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
            let ret: i64;
            // SAFETY: the x86-64 Linux convention — number in rax, args in
            // rdi/rsi/rdx/r10, kernel clobbers rcx and r11.  Callers pass
            // only live pointers (or plain integers) as arguments.
            unsafe {
                core::arch::asm!(
                    "syscall",
                    inlateout("rax") nr => ret,
                    in("rdi") a1,
                    in("rsi") a2,
                    in("rdx") a3,
                    in("r10") a4,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack)
                );
            }
            ret
        }

        /// Generic 6-argument syscall (`epoll_pwait` needs the sigmask pair).
        #[cfg(target_arch = "aarch64")]
        fn syscall6(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> i64 {
            let ret: i64;
            // SAFETY: the aarch64 Linux convention — number in x8, args in
            // x0..x5, return in x0.  Callers pass only live pointers (or
            // plain integers) as arguments.
            unsafe {
                core::arch::asm!(
                    "svc 0",
                    inlateout("x0") a1 => ret,
                    in("x1") a2,
                    in("x2") a3,
                    in("x3") a4,
                    in("x4") a5,
                    in("x5") a6,
                    in("x8") nr,
                    options(nostack)
                );
            }
            ret
        }

        #[cfg(target_arch = "x86_64")]
        mod nr {
            pub const EPOLL_CREATE1: i64 = 291;
            pub const EPOLL_CTL: i64 = 233;
            pub const EPOLL_WAIT: i64 = 232;
            pub const CLOSE: i64 = 3;
        }

        #[cfg(target_arch = "aarch64")]
        mod nr {
            pub const EPOLL_CREATE1: u64 = 20;
            pub const EPOLL_CTL: u64 = 21;
            // aarch64 has no plain epoll_wait; epoll_pwait with a null
            // sigmask is equivalent.
            pub const EPOLL_PWAIT: u64 = 22;
            pub const CLOSE: u64 = 57;
        }

        #[cfg(target_arch = "x86_64")]
        pub(super) fn epoll_create1(flags: i32) -> i64 {
            syscall4(nr::EPOLL_CREATE1, i64::from(flags), 0, 0, 0)
        }

        #[cfg(target_arch = "aarch64")]
        pub(super) fn epoll_create1(flags: i32) -> i64 {
            syscall6(nr::EPOLL_CREATE1, flags as u64, 0, 0, 0, 0, 0)
        }

        #[cfg(target_arch = "x86_64")]
        pub(super) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: &mut EpollEvent) -> i64 {
            syscall4(
                nr::EPOLL_CTL,
                i64::from(epfd),
                i64::from(op),
                i64::from(fd),
                std::ptr::from_mut(event) as i64,
            )
        }

        #[cfg(target_arch = "aarch64")]
        pub(super) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: &mut EpollEvent) -> i64 {
            syscall6(
                nr::EPOLL_CTL,
                epfd as u64,
                op as u64,
                fd as u64,
                std::ptr::from_mut(event) as u64,
                0,
                0,
            )
        }

        #[cfg(target_arch = "x86_64")]
        pub(super) fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: u32) -> i64 {
            syscall4(
                nr::EPOLL_WAIT,
                i64::from(epfd),
                events.as_mut_ptr() as i64,
                i64::try_from(events.len()).unwrap_or(0),
                i64::from(timeout_ms),
            )
        }

        #[cfg(target_arch = "aarch64")]
        pub(super) fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: u32) -> i64 {
            // Null sigmask: the final sigsetsize argument is ignored.
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as u64,
                events.as_mut_ptr() as u64,
                events.len() as u64,
                u64::from(timeout_ms),
                0,
                0,
            )
        }

        #[cfg(target_arch = "x86_64")]
        pub(super) fn close(fd: i32) {
            let _ = syscall4(nr::CLOSE, i64::from(fd), 0, 0, 0);
        }

        #[cfg(target_arch = "aarch64")]
        pub(super) fn close(fd: i32) {
            let _ = syscall6(nr::CLOSE, fd as u64, 0, 0, 0, 0, 0);
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::{Event, Fd};
    use std::collections::HashMap;
    use std::io;

    /// Portable backend for [`super::Poller`]: no kernel state to manage —
    /// the outer interest table *is* the registration, and each wait
    /// sleeps briefly then reports everything registered as ready
    /// (level-triggered busy-poll; nonblocking sockets make spurious
    /// readiness free, `WouldBlock` leaves every state machine unchanged).
    pub(super) struct PollerImpl;

    impl PollerImpl {
        pub(super) fn new() -> io::Result<Self> {
            Ok(Self)
        }

        pub(super) fn register(
            &mut self,
            _fd: Fd,
            _token: u64,
            _want_read: bool,
            _want_write: bool,
        ) -> io::Result<()> {
            Ok(())
        }

        pub(super) fn modify(
            &mut self,
            _fd: Fd,
            _token: u64,
            _want_read: bool,
            _want_write: bool,
        ) -> io::Result<()> {
            Ok(())
        }

        pub(super) fn deregister(&mut self, _fd: Fd) {}

        pub(super) fn wait(
            &mut self,
            interest: &HashMap<Fd, (u64, bool, bool)>,
            _tokens: &HashMap<u64, (bool, bool)>,
            timeout_ms: u32,
            out: &mut Vec<Event>,
        ) -> io::Result<()> {
            std::thread::sleep(std::time::Duration::from_millis(u64::from(
                timeout_ms.min(1),
            )));
            for &(token, want_read, want_write) in interest.values() {
                if want_read || want_write {
                    out.push(Event {
                        token,
                        readable: want_read,
                        writable: want_write,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    const ON_SYSCALL_PATH: bool = cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ));

    #[test]
    fn poller_reports_readiness_under_registered_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.update(fd_of(&server), 42, true, false).unwrap();

        if ON_SYSCALL_PATH {
            let events = poller.wait(10).unwrap();
            assert!(events.is_empty(), "no bytes pending yet");
        }

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let events = poller.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);
        assert!(!events[0].writable, "did not ask for writability");
    }

    #[test]
    fn poller_update_changes_interest_and_remove_silences_the_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_server, _) = listener.accept().unwrap();
        let fd = fd_of(&client);

        let mut poller = Poller::new().unwrap();
        // An open socket is immediately writable…
        poller.update(fd, 7, false, true).unwrap();
        let events = poller.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].writable && !events[0].readable);

        // …re-registering the same interest is a no-op, a different token
        // relabels the same socket…
        poller.update(fd, 7, false, true).unwrap();
        poller.update(fd, 9, false, true).unwrap();
        let events = poller.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);

        // …and dropping all interest (or removing outright) silences it.
        poller.update(fd, 9, false, false).unwrap();
        if ON_SYSCALL_PATH {
            assert!(poller.wait(10).unwrap().is_empty());
        }
        poller.update(fd, 9, false, true).unwrap();
        poller.remove(fd);
        if ON_SYSCALL_PATH {
            assert!(poller.wait(10).unwrap().is_empty());
        }
    }

    #[test]
    fn poller_hangup_wakes_only_a_registered_direction() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.update(fd_of(&server), 3, true, false).unwrap();
        drop(client);
        let events = poller.wait(1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "hang-up must wake the reader");
        assert!(!events[0].writable, "writes were never registered");
    }

    #[test]
    fn poller_watches_many_sockets_and_reports_only_the_ready_ones() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        let pairs: Vec<(TcpStream, TcpStream)> = (0..32)
            .map(|i| {
                let client = TcpStream::connect(addr).unwrap();
                let (server, _) = listener.accept().unwrap();
                server.set_nonblocking(true).unwrap();
                poller.update(fd_of(&server), i, true, false).unwrap();
                (client, server)
            })
            .collect();

        // Exactly one socket gets bytes: only its token may come back.
        let mut chosen = &pairs[17].0;
        chosen.write_all(b"x").unwrap();
        chosen.flush().unwrap();
        let events = poller.wait(1000).unwrap();
        assert!(!events.is_empty());
        if ON_SYSCALL_PATH {
            assert_eq!(events.len(), 1, "only the ready socket wakes the poller");
            assert_eq!(events[0].token, 17);
        }
    }
}
