//! Multiplexed-server scale and lifecycle tests: one event loop holding
//! over a thousand live connections, and graceful shutdown that drains
//! in-flight work instead of dropping it.
//!
//! The thread-per-connection server these tests replaced would need >1000
//! OS threads for the first test; the event loop holds every socket in one
//! poll set and keeps the worker pool small.  Throughput at this scale is
//! pinned by the serve benchmark; here the contracts are *correctness*:
//! every connection serves, every answer is bit-identical to the
//! in-process pipeline, and shutdown completes outstanding responses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use partial_info_estimators::core::suite::max_oblivious_suite;
use partial_info_estimators::datagen::paper_example;
use partial_info_estimators::{CatalogEntry, Pipeline, PipelineReport, Scheme, Statistic};
use pie_serve::{ServeClient, ServeError, Server};

const TRIALS: u64 = 6;
const SALT: u64 = 5;

/// The single small sketch every connection queries.
fn entry() -> CatalogEntry {
    CatalogEntry::build(
        paper_example().take_instances(2),
        Scheme::oblivious(0.5),
        1,
        TRIALS,
        SALT,
    )
    .unwrap()
}

/// The in-process reference report the served answers must equal.
fn expected() -> PipelineReport {
    Pipeline::new()
        .dataset(Arc::new(paper_example().take_instances(2)))
        .scheme(Scheme::oblivious(0.5))
        .estimators(max_oblivious_suite(0.5, 0.5))
        .statistic(Statistic::max_dominance())
        .trials(TRIALS)
        .base_salt(SALT)
        .run()
        .unwrap()
}

#[test]
fn a_thousand_concurrent_connections_all_serve_bit_identically() {
    const CONNECTIONS: usize = 1024;
    const DRIVERS: usize = 8;

    let server = Server::bind("127.0.0.1:0").unwrap();
    server.catalog().insert("example", entry());
    let addr = server.local_addr();
    let want = expected();

    // Open every connection up front and hold them all: the event loop
    // must carry 1024 live sockets in one poll set.
    let mut clients: Vec<ServeClient> = (0..CONNECTIONS)
        .map(|i| {
            ServeClient::connect(addr)
                .unwrap_or_else(|e| panic!("connection {i} refused at scale: {e}"))
        })
        .collect();

    // Every connection proves liveness while all the others stay open.
    for client in &mut clients {
        client.ping().unwrap();
    }

    // Drive all 1024 from a few threads so requests overlap, and check
    // every answer against the in-process pipeline, bit for bit.
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let chunk = CONNECTIONS / DRIVERS;
        for (t, slice) in clients.chunks_mut(chunk).enumerate() {
            let want = &want;
            let served = &served;
            scope.spawn(move || {
                for (c, client) in slice.iter_mut().enumerate() {
                    let got = client
                        .estimate("example", "max_oblivious", "max_dominance")
                        .unwrap_or_else(|e| panic!("driver {t} client {c}: {e}"));
                    assert_eq!(got, *want, "driver {t} client {c} diverged");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(served.load(Ordering::Relaxed), CONNECTIONS);
    drop(clients);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_work_and_refuses_new_connections() {
    let server = Server::bind("127.0.0.1:0").unwrap();
    server.catalog().insert("example", entry());
    let addr = server.local_addr();
    let want = expected();
    let handle = server.shutdown_handle();

    // Hammer the server from several client threads while another thread
    // requests shutdown mid-flight.  Every *completed* answer must still
    // be bit-identical — a drained response is a full response — and every
    // failure must be a typed transport/timeout fault, never a bad answer.
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let want = &want;
            let completed = &completed;
            scope.spawn(move || {
                let Ok(mut client) = ServeClient::connect(addr) else {
                    return; // shutdown won the race before we connected
                };
                for i in 0..200 {
                    match client.estimate("example", "max_oblivious", "max_dominance") {
                        Ok(got) => {
                            assert_eq!(got, *want, "thread {t} request {i} diverged");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(
                            ServeError::Transport { .. }
                            | ServeError::Timeout { .. }
                            | ServeError::Protocol { .. },
                        ) => return, // the drain closed us; fine
                        Err(other) => panic!("thread {t} request {i}: {other}"),
                    }
                }
            });
        }
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            handle.shutdown();
        });
    });
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "no request completed before shutdown"
    );

    // Joining the server must now return promptly (drain, not hang).
    server.shutdown();

    // And the port is closed: new connections are refused outright.
    assert!(
        ServeClient::connect(addr).is_err(),
        "listener still accepting after shutdown"
    );
}
