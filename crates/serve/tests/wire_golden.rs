//! Golden wire-format pins: byte-exact snapshots of one encoded frame per
//! request and response type.
//!
//! Any accidental protocol drift — a reordered field, a changed tag, a new
//! frame constant — fails these tests loudly.  An *intentional* wire change
//! must bump [`WIRE_VERSION`] and re-pin (run with
//! `PIE_PRINT_GOLDEN=1 cargo test -p pie-serve --test wire_golden -- --nocapture`
//! to print the new hex).  Mirrors `seed_golden.rs` in `pie-sampling`.

use partial_info_estimators::analysis::{Evaluation, RunningStats};
use partial_info_estimators::{EstimatorReport, PipelineReport, Scheme};
use pie_engine::{CacheStats, EngineStatsReport, QueueStats, RequestCountRow, TenantStatsRow};
use pie_obs::MetricsRegistry;
use pie_serve::wire::{write_message, write_message_traced};
use pie_serve::{
    BatchQuery, IngestRecord, Request, Response, ServeError, SketchConfig, SketchInfo, SpanRecord,
    TraceContext,
};
use pie_store::Encode;

/// One deterministic exemplar per message type.
fn exemplars() -> Vec<(&'static str, Vec<u8>)> {
    let info = SketchInfo {
        name: "traffic".into(),
        config: SketchConfig {
            scheme: Scheme::pps(150.0),
            shards: 2,
            trials: 6,
            base_salt: 5,
        },
        instances: 2,
        ready: true,
        buffered_records: 0,
    };
    let report = PipelineReport {
        statistic: "max_dominance".into(),
        truth: 10.0,
        trials: 2,
        estimators: vec![EstimatorReport {
            name: "max_ht_pps".into(),
            evaluation: {
                let mut stats = RunningStats::new();
                stats.push(9.0);
                stats.push(11.0);
                Evaluation::from_stats(&stats, 10.0)
            },
        }],
    };
    let messages: Vec<(&'static str, Box<dyn Encode>)> = vec![
        ("request_list_catalog", Box::new(Request::ListCatalog)),
        (
            "request_load_snapshot",
            Box::new(Request::LoadSnapshot {
                name: "traffic".into(),
                path: "/srv/traffic.pies".into(),
            }),
        ),
        (
            "request_ingest_batch",
            Box::new(Request::IngestBatch {
                sketch: "live".into(),
                config: SketchConfig {
                    scheme: Scheme::oblivious(0.5),
                    shards: 2,
                    trials: 6,
                    base_salt: 5,
                },
                records: vec![IngestRecord {
                    instance: 1,
                    key: 42,
                    value: 2.5,
                }],
                last: true,
            }),
        ),
        (
            "request_estimate",
            Box::new(Request::Estimate {
                sketch: "traffic".into(),
                estimator: "max_weighted".into(),
                statistic: "max_dominance".into(),
            }),
        ),
        (
            "response_catalog",
            Box::new(Response::Catalog(vec![info.clone()])),
        ),
        ("response_loaded", Box::new(Response::Loaded(info))),
        (
            "response_ingested",
            Box::new(Response::Ingested {
                sketch: "live".into(),
                buffered_records: 12,
                ready: false,
            }),
        ),
        (
            "response_estimated",
            Box::new(Response::Estimated(report.clone())),
        ),
        (
            "response_error",
            Box::new(Response::Error(ServeError::UnknownSketch {
                name: "gone".into(),
            })),
        ),
        (
            "request_identify",
            Box::new(Request::Identify {
                tenant: "acme".into(),
            }),
        ),
        (
            "request_batch_estimate",
            Box::new(Request::BatchEstimate {
                sketch: "traffic".into(),
                queries: vec![
                    BatchQuery {
                        estimator: "max_weighted".into(),
                        statistic: "max_dominance".into(),
                    },
                    BatchQuery {
                        estimator: "max_weighted".into(),
                        statistic: "distinct_count".into(),
                    },
                ],
            }),
        ),
        ("request_stats", Box::new(Request::Stats)),
        (
            "response_identified",
            Box::new(Response::Identified {
                tenant: "acme".into(),
            }),
        ),
        (
            "response_batch_estimated",
            Box::new(Response::BatchEstimated(vec![report])),
        ),
        (
            "request_put_snapshot",
            Box::new(Request::PutSnapshot {
                name: "replica".into(),
                snapshot: vec![0xDE, 0xAD, 0xBE, 0xEF],
            }),
        ),
        ("request_ping", Box::new(Request::Ping)),
        ("response_pong", Box::new(Response::Pong)),
        (
            "response_error_timeout",
            Box::new(Response::Error(ServeError::Timeout {
                during: "reading the response".into(),
            })),
        ),
        (
            "response_stats",
            Box::new(Response::Stats(EngineStatsReport {
                cache: CacheStats {
                    hits: 9,
                    misses: 3,
                    evictions: 1,
                    invalidated: 2,
                    entries: 4,
                    capacity: 1024,
                },
                queue: QueueStats {
                    inflight: 1,
                    queued: 0,
                    shed: 5,
                    max_inflight: 64,
                    max_queue: 1024,
                },
                tenants: vec![TenantStatsRow {
                    tenant: "acme".into(),
                    queries_admitted: 12,
                    queries_shed: 5,
                    ingest_records_admitted: 100,
                    ingests_shed: 0,
                }],
                requests: vec![
                    RequestCountRow {
                        request: "estimate".into(),
                        count: 12,
                    },
                    RequestCountRow {
                        request: "ping".into(),
                        count: 1,
                    },
                ],
                uptime_ms: 60_000,
                threads_available: 8,
                version: "0.9.0".into(),
            })),
        ),
        ("request_metrics", Box::new(Request::Metrics)),
        (
            "request_query_trace",
            Box::new(Request::QueryTrace {
                trace_id: 0xFEED_F00D,
            }),
        ),
        (
            "response_metrics",
            Box::new(Response::Metrics({
                let registry = MetricsRegistry::new();
                registry.counter("requests_total").add(12);
                registry.gauge("worker_queue_depth").set(2);
                registry.histogram("request_nanos").record(1_500);
                registry.snapshot()
            })),
        ),
        (
            "response_traces",
            Box::new(Response::Traces(vec![SpanRecord {
                trace_id: 11,
                span_id: 3,
                parent_span_id: 1,
                node: "127.0.0.1:4100".into(),
                stage: "trial_replay".into(),
                start_nanos: 2_000,
                duration_nanos: 450,
            }])),
        ),
    ];
    let mut frames: Vec<(&'static str, Vec<u8>)> = messages
        .into_iter()
        .map(|(name, message)| {
            let mut bytes = Vec::new();
            write_message(&mut bytes, message.as_ref()).unwrap();
            (name, bytes)
        })
        .collect();
    // A frame carrying the optional trace-context extension: the payload is
    // the untraced encoding plus the appended extension block.
    let mut traced = Vec::new();
    write_message_traced(
        &mut traced,
        &Request::Estimate {
            sketch: "traffic".into(),
            estimator: "max_weighted".into(),
            statistic: "max_dominance".into(),
        },
        Some(&TraceContext::new(0xBEEF, 1)),
    )
    .unwrap();
    frames.push(("request_estimate_traced", traced));
    frames
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The pinned frames.  Regenerate only on an intentional, version-bumped
/// wire change.
const GOLDEN: [(&str, &str); 24] = [
    ("request_list_catalog", "50494557010000000400000000000000000000006069b1e26ffb1364"),
    ("request_load_snapshot", "50494557010000002c000000000000000100000007000000000000007472616666696311000000000000002f7372762f747261666669632e70696573ef77bed2a22758c3"),
    ("request_ingest_batch", "504945570100000055000000000000000200000004000000000000006c69766500000000000000000000e03f020000000000000006000000000000000500000000000000010000000000000001000000000000002a00000000000000000000000000044001da38c04643cca3a4"),
    ("request_estimate", "50494557010000003c00000000000000030000000700000000000000747261666669630c000000000000006d61785f77656967687465640d000000000000006d61785f646f6d696e616e6365f72ba78406d8b6b2"),
    ("response_catalog", "50494557010000005000000000000000000000000100000000000000070000000000000074726166666963010000000000000000c0624002000000000000000600000000000000050000000000000002000000000000000100000000000000008a5d9cadc662b158"),
    ("response_loaded", "5049455701000000480000000000000001000000070000000000000074726166666963010000000000000000c062400200000000000000060000000000000005000000000000000200000000000000010000000000000000c226eb5e3fe7e9a5"),
    ("response_ingested", "504945570100000019000000000000000200000004000000000000006c6976650c0000000000000000ff185b6b6e8f9c50"),
    ("response_estimated", "50494557010000006b00000000000000030000000d000000000000006d61785f646f6d696e616e63650000000000002440020000000000000001000000000000000a000000000000006d61785f68745f70707300000000000024400000000000002440000000000000f03f000000000000000002000000000000003154033e6d108d87"),
    ("response_error", "5049455701000000140000000000000004000000030000000400000000000000676f6e65706f15e0b1028cca"),
    ("request_identify", "5049455701000000100000000000000004000000040000000000000061636d656a09e492b5405462"),
    ("request_batch_estimate", "50494557010000006e000000000000000500000007000000000000007472616666696302000000000000000c000000000000006d61785f77656967687465640d000000000000006d61785f646f6d696e616e63650c000000000000006d61785f77656967687465640e0000000000000064697374696e63745f636f756e7475768155fd2abf05"),
    ("request_stats", "5049455701000000040000000000000006000000c6d4f3e7a103f423"),
    ("response_identified", "5049455701000000100000000000000005000000040000000000000061636d650f8f5f6c997aa6cd"),
    ("response_batch_estimated", "504945570100000073000000000000000600000001000000000000000d000000000000006d61785f646f6d696e616e63650000000000002440020000000000000001000000000000000a000000000000006d61785f68745f70707300000000000024400000000000002440000000000000f03f0000000000000000020000000000000075709144e7272fe8"),
    ("request_put_snapshot", "50494557010000001f000000000000000700000007000000000000007265706c6963610400000000000000deadbeefb3c25bc8c16f6710"),
    ("request_ping", "5049455701000000040000000000000008000000e84d5f94b25be963"),
    ("response_pong", "5049455701000000040000000000000008000000e84d5f94b25be963"),
    ("response_error_timeout", "50494557010000002400000000000000040000000e000000140000000000000072656164696e672074686520726573706f6e73653cb273af6f842627"),
    // Re-pinned when `EngineStatsReport` gained its appended-at-the-end
    // observability fields (requests, uptime_ms, threads_available,
    // version) — an additive payload change; WIRE_VERSION is unchanged.
    ("response_stats", "5049455701000000e10000000000000007000000090000000000000003000000000000000100000000000000020000000000000004000000000000000004000000000000010000000000000000000000000000000500000000000000400000000000000000040000000000000100000000000000040000000000000061636d650c0000000000000005000000000000006400000000000000000000000000000002000000000000000800000000000000657374696d6174650c00000000000000040000000000000070696e67010000000000000060ea00000000000008000000000000000500000000000000302e392e3082f1e0c20941bae5"),
    ("request_metrics", "5049455701000000040000000000000009000000790a95eaba07e403"),
    ("request_query_trace", "50494557010000000c000000000000000a0000000df0edfe0000000090f9ca401a5f1b7f"),
    ("response_metrics", "504945570100000049020000000000000900000001000000000000000e0000000000000072657175657374735f746f74616c0c0000000000000001000000000000001200000000000000776f726b65725f71756575655f6465707468020000000000000001000000000000000d00000000000000726571756573745f6e616e6f730100000000000000dc05000000000000dc05000000000000dc050000000000003600000000000000000000000000000000000000000000000100000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000717f470b83d5cce5"),
    ("response_traces", "50494557010000005e000000000000000a00000001000000000000000b00000000000000030000000000000001000000000000000e000000000000003132372e302e302e313a343130300c00000000000000747269616c5f7265706c6179d007000000000000c201000000000000aa26adcecb33ac67"),
    ("request_estimate_traced", "50494557010000005800000000000000030000000700000000000000747261666669630c000000000000006d61785f77656967687465640d000000000000006d61785f646f6d696e616e6365010000001000000000000000efbe0000000000000100000000000000da88576302df6553"),
];

#[test]
fn every_message_frame_matches_its_golden_bytes() {
    let exemplars = exemplars();
    if std::env::var_os("PIE_PRINT_GOLDEN").is_some() {
        for (name, bytes) in &exemplars {
            println!("(\"{name}\", \"{}\"),", hex(bytes));
        }
    }
    assert_eq!(exemplars.len(), GOLDEN.len());
    for ((name, bytes), (golden_name, golden_hex)) in exemplars.iter().zip(GOLDEN) {
        assert_eq!(*name, golden_name);
        assert_eq!(
            hex(bytes),
            golden_hex,
            "wire drift in {name}: if intentional, bump WIRE_VERSION and re-pin"
        );
    }
}

#[test]
fn frame_constants_are_pinned() {
    use pie_serve::{MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION};
    assert_eq!(WIRE_MAGIC, *b"PIEW");
    assert_eq!(WIRE_VERSION, 1);
    assert_eq!(MAX_FRAME_BYTES, 64 * 1024 * 1024);
    // And the header shape every frame starts with: magic ‖ version ‖ len.
    let (_, bytes) = &exemplars()[0];
    assert_eq!(&bytes[..4], b"PIEW");
    assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1);
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    assert_eq!(bytes.len() as u64, 16 + len + 8);
}
