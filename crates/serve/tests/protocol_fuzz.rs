//! Protocol fuzz/property tests: malformed bytes against the wire decoders
//! and against a live server connection.
//!
//! Every case must yield a typed `ServeError`/`StoreError` — never a panic —
//! and the connection must survive every *recoverable* fault (wrong
//! version, checksum mismatch, bad payload) to serve the next well-formed
//! request.  Fatal faults (bad magic, oversized length prefix, truncation)
//! may close the connection, but the server itself must keep accepting.

use std::io::{Read, Write};
use std::net::TcpStream;

use partial_info_estimators::{CatalogEntry, Scheme};
use pie_datagen::paper_example;
use pie_serve::wire::{
    read_request, read_response, write_message, write_message_traced, Request, SketchConfig,
    EXT_TRACE_CONTEXT, MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION,
};
use pie_serve::{Response, ServeClient, ServeError, Server, TraceContext};
use pie_store::frame::write_frame;
use pie_store::{Encode, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One well-formed frame per request type, as the mutation corpus.
fn corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::ListCatalog,
        Request::LoadSnapshot {
            name: "traffic".into(),
            path: "/tmp/t.pies".into(),
        },
        Request::IngestBatch {
            sketch: "live".into(),
            config: SketchConfig {
                scheme: Scheme::pps(150.0),
                shards: 2,
                trials: 6,
                base_salt: 1,
            },
            records: vec![pie_serve::IngestRecord {
                instance: 0,
                key: 7,
                value: 2.5,
            }],
            last: false,
        },
        Request::Estimate {
            sketch: "traffic".into(),
            estimator: "max_weighted".into(),
            statistic: "max_dominance".into(),
        },
        Request::Identify {
            tenant: "acme".into(),
        },
        Request::BatchEstimate {
            sketch: "traffic".into(),
            queries: vec![
                pie_serve::BatchQuery {
                    estimator: "max_weighted".into(),
                    statistic: "max_dominance".into(),
                },
                pie_serve::BatchQuery {
                    estimator: "max_weighted".into(),
                    statistic: "distinct_count".into(),
                },
            ],
        },
        Request::Stats,
        Request::PutSnapshot {
            name: "replica".into(),
            snapshot: vec![0xDE, 0xAD, 0xBE, 0xEF],
        },
        Request::Ping,
        Request::Metrics,
        Request::QueryTrace { trace_id: u64::MAX },
    ];
    let mut frames: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| {
            let mut bytes = Vec::new();
            write_message(&mut bytes, r).unwrap();
            bytes
        })
        .collect();
    // A trace-context extension frame with hostile ids, so mutations and
    // truncations also land inside the extension block.
    let mut traced = Vec::new();
    write_message_traced(
        &mut traced,
        &Request::Ping,
        Some(&TraceContext::new(u64::MAX, u64::MAX)),
    )
    .unwrap();
    frames.push(traced);
    frames
}

#[test]
fn seeded_random_mutations_never_panic_the_request_decoder() {
    let corpus = corpus();
    let mut rng = StdRng::seed_from_u64(0xF055_AA11);
    let mut decoded_ok = 0usize;
    let mut faulted = 0usize;
    for round in 0..4000 {
        let base = &corpus[round % corpus.len()];
        let mut bytes = base.clone();
        // 1–4 random single-byte mutations anywhere in the frame.
        for _ in 0..rng.gen_range(1usize..5) {
            let i = rng.gen_range(0usize..bytes.len());
            bytes[i] ^= 1 << rng.gen_range(0u32..8);
        }
        match read_request(&mut bytes.as_slice()) {
            // A mutation may cancel out or hit a don't-care byte; a decoded
            // request is fine as long as nothing panicked.
            Ok(_) => decoded_ok += 1,
            Err(fault) => {
                faulted += 1;
                // The error is typed, displayable, and classified.
                let _ = fault.error.to_string();
                let _ = fault.fatal;
            }
        }
    }
    assert!(faulted > 0, "mutations never produced a fault?");
    // The checksum catches essentially everything; decoded_ok only counts
    // lucky identity mutations.
    assert!(decoded_ok < faulted);
}

#[test]
fn every_truncation_of_every_request_is_a_typed_fault() {
    for base in corpus() {
        for cut in 0..base.len() {
            match read_request(&mut &base[..cut]) {
                Ok(None) => assert_eq!(cut, 0, "clean EOF only before the first byte"),
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Err(fault) => {
                    assert!(
                        matches!(
                            fault.error,
                            StoreError::Truncated { .. } | StoreError::Io(_)
                        ),
                        "cut {cut}: {}",
                        fault.error
                    );
                    assert!(fault.fatal, "a truncated stream cannot be resynced");
                }
            }
        }
    }
}

#[test]
fn oversized_and_hostile_length_prefixes_are_rejected_up_front() {
    for claimed in [
        MAX_FRAME_BYTES + 1,
        u64::from(u32::MAX),
        u64::MAX / 2,
        u64::MAX,
    ] {
        let mut bytes = Vec::new();
        write_message(&mut bytes, &Request::ListCatalog).unwrap();
        bytes[8..16].copy_from_slice(&claimed.to_le_bytes());
        let fault = read_request(&mut bytes.as_slice()).unwrap_err();
        assert!(
            matches!(fault.error, StoreError::FrameTooLarge { len, .. } if len == claimed),
            "claimed {claimed}: {}",
            fault.error
        );
        assert!(fault.fatal);
    }
}

#[test]
fn wrong_version_and_wrong_magic_are_distinct_typed_faults() {
    let mut bytes = Vec::new();
    write_message(&mut bytes, &Request::ListCatalog).unwrap();
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xEE;
    let fault = read_request(&mut wrong_version.as_slice()).unwrap_err();
    assert!(matches!(
        fault.error,
        StoreError::UnsupportedVersion { found: 0xEE, .. }
    ));
    assert!(!fault.fatal, "wrong version is survivable");

    let mut wrong_magic = bytes;
    wrong_magic[..4].copy_from_slice(b"HTTP");
    let fault = read_request(&mut wrong_magic.as_slice()).unwrap_err();
    assert!(matches!(fault.error, StoreError::BadMagic { .. }));
    assert!(fault.fatal, "an unframed stream cannot be resynced");
}

#[test]
fn random_garbage_never_panics_either_decoder() {
    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..2000 {
        let len = rng.gen_range(0usize..256);
        let garbage: Vec<u8> = (0..len).map(|_| (rng.gen::<u32>() & 0xFF) as u8).collect();
        let _ = read_request(&mut garbage.as_slice());
        let _ = read_response(&mut garbage.as_slice());
        // Garbage wrapped in a *valid* frame exercises the payload decoders
        // specifically (the frame layer validates clean, so the decoders
        // must reject on their own).
        let mut framed = Vec::new();
        write_frame(&mut framed, WIRE_MAGIC, WIRE_VERSION, &garbage).unwrap();
        let _ = read_request(&mut framed.as_slice());
        let _ = read_response(&mut framed.as_slice());
    }
}

/// Sends raw bytes on a fresh connection, then checks the server still
/// accepts a well-formed request on a *new* connection.
fn send_raw_then_expect_alive(server: &Server, raw: &[u8]) {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(raw).unwrap();
    stream.flush().unwrap();
    // Read whatever the server answers (possibly nothing) until it closes
    // or responds; either way it must not bring the server down.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = Vec::new();
    let _ = (&mut stream).take(1 << 20).read_to_end(&mut sink);
    drop(stream);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.list_catalog().expect("server must stay alive");
}

#[test]
fn live_server_survives_recoverable_faults_on_the_same_connection() {
    let server = Server::bind("127.0.0.1:0").unwrap();
    let entry = CatalogEntry::build(
        paper_example().take_instances(2),
        Scheme::oblivious(0.5),
        1,
        10,
        0,
    )
    .unwrap();
    server.catalog().insert("example", entry);

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let well_formed = {
        let mut bytes = Vec::new();
        write_message(&mut bytes, &Request::ListCatalog).unwrap();
        bytes
    };

    // Recoverable fault class 1: corrupted payload byte (checksum catches).
    let mut corrupted = well_formed.clone();
    let last = corrupted.len() - 9; // a payload byte, not the checksum
    corrupted[last] ^= 0x10;
    // Class 2: wrong protocol version.
    let mut wrong_version = well_formed.clone();
    wrong_version[4] = 42;
    // Class 3: valid frame, invalid request tag.
    let bad_tag = {
        let mut payload = Vec::new();
        9999u32.encode(&mut payload).unwrap();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, WIRE_MAGIC, WIRE_VERSION, &payload).unwrap();
        bytes
    };
    // Class 4: valid frame, trailing bytes after a valid request.
    let trailing = {
        let mut payload = Vec::new();
        Request::ListCatalog.encode(&mut payload).unwrap();
        payload.extend_from_slice(b"junk");
        let mut bytes = Vec::new();
        write_frame(&mut bytes, WIRE_MAGIC, WIRE_VERSION, &payload).unwrap();
        bytes
    };

    for (what, malformed) in [
        ("corrupted payload", &corrupted),
        ("wrong version", &wrong_version),
        ("invalid tag", &bad_tag),
        ("trailing bytes", &trailing),
    ] {
        writer.write_all(malformed).unwrap();
        writer.flush().unwrap();
        let response = read_response(&mut reader)
            .unwrap_or_else(|f| panic!("{what}: fault instead of response: {}", f.error))
            .expect("server closed unexpectedly");
        assert!(
            matches!(response, Response::Error(ServeError::Protocol { .. })),
            "{what}: got {response:?}"
        );
        // The SAME connection serves the next well-formed request.
        writer.write_all(&well_formed).unwrap();
        writer.flush().unwrap();
        let response = read_response(&mut reader).unwrap().unwrap();
        assert!(
            matches!(response, Response::Catalog(ref rows) if rows.len() == 1),
            "{what}: connection did not survive, got {response:?}"
        );
    }
    drop(writer);
    server.shutdown();
}

#[test]
fn hostile_trace_extensions_are_typed_faults_that_never_kill_the_connection() {
    let server = Server::bind("127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let ping_payload = {
        let mut payload = Vec::new();
        Request::Ping.encode(&mut payload).unwrap();
        payload
    };
    let framed = |payload: &[u8]| {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, WIRE_MAGIC, WIRE_VERSION, payload).unwrap();
        bytes
    };
    let ext = |tag: u32, claimed_len: u64, body: &[u8]| {
        let mut bytes = Vec::new();
        tag.encode(&mut bytes).unwrap();
        claimed_len.encode(&mut bytes).unwrap();
        bytes.extend_from_slice(body);
        bytes
    };

    // Every malformed extension block is a *recoverable* typed fault: the
    // frame was already consumed whole, so the same connection keeps
    // serving traced requests afterwards.
    let mut truncated_header = ping_payload.clone();
    truncated_header.extend_from_slice(&[1, 0, 0, 0, 16]); // 5 bytes < 12
    let mut runaway_length = ping_payload.clone();
    runaway_length.extend_from_slice(&ext(EXT_TRACE_CONTEXT, 1 << 20, &[]));
    let mut hostile_length = ping_payload.clone();
    hostile_length.extend_from_slice(&ext(EXT_TRACE_CONTEXT, u64::MAX, &[]));
    let mut wrong_size_body = ping_payload.clone();
    wrong_size_body.extend_from_slice(&ext(EXT_TRACE_CONTEXT, 8, &[0xAB; 8]));
    let mut duplicate_context = ping_payload.clone();
    duplicate_context.extend_from_slice(&ext(EXT_TRACE_CONTEXT, 16, &[0x11; 16]));
    duplicate_context.extend_from_slice(&ext(EXT_TRACE_CONTEXT, 16, &[0x22; 16]));

    let traced_ping = {
        let mut bytes = Vec::new();
        write_message_traced(
            &mut bytes,
            &Request::Ping,
            Some(&TraceContext::new(u64::MAX, u64::MAX)),
        )
        .unwrap();
        bytes
    };

    for (what, payload) in [
        ("truncated extension header", &truncated_header),
        ("length past payload end", &runaway_length),
        ("hostile u64::MAX length", &hostile_length),
        ("wrong-size trace body", &wrong_size_body),
        ("duplicate trace context", &duplicate_context),
    ] {
        writer.write_all(&framed(payload)).unwrap();
        writer.flush().unwrap();
        let response = read_response(&mut reader)
            .unwrap_or_else(|f| panic!("{what}: fault instead of response: {}", f.error))
            .expect("server closed unexpectedly");
        assert!(
            matches!(response, Response::Error(ServeError::Protocol { .. })),
            "{what}: got {response:?}"
        );
        // The SAME connection serves a traced request with hostile (but
        // well-formed) ids: trace ids are opaque data, never interpreted.
        writer.write_all(&traced_ping).unwrap();
        writer.flush().unwrap();
        let response = read_response(&mut reader).unwrap().unwrap();
        assert!(
            matches!(response, Response::Pong),
            "{what}: connection did not survive, got {response:?}"
        );
    }

    // Unknown extension tags are skipped for forward compatibility, not
    // faulted: the request underneath is served normally.
    let mut unknown_tag = ping_payload.clone();
    unknown_tag.extend_from_slice(&ext(0xDEAD_BEEF, 4, b"junk"));
    writer.write_all(&framed(&unknown_tag)).unwrap();
    writer.flush().unwrap();
    let response = read_response(&mut reader).unwrap().unwrap();
    assert!(
        matches!(response, Response::Pong),
        "unknown tag: got {response:?}"
    );

    drop(writer);
    server.shutdown();
}

#[test]
fn live_server_survives_fatal_faults_on_fresh_connections() {
    let server = Server::bind("127.0.0.1:0").unwrap();

    // Bad magic: server answers (if it can) and closes; must stay up.
    let mut http = Vec::new();
    http.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
    send_raw_then_expect_alive(&server, &http);

    // Oversized length prefix.
    let mut oversized = Vec::new();
    write_message(&mut oversized, &Request::ListCatalog).unwrap();
    oversized[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    send_raw_then_expect_alive(&server, &oversized);

    // Truncated frame then hang-up.
    let mut whole = Vec::new();
    write_message(&mut whole, &Request::ListCatalog).unwrap();
    send_raw_then_expect_alive(&server, &whole[..whole.len() / 2]);

    // Seeded-random garbage connections.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let len = rng.gen_range(1usize..128);
        let garbage: Vec<u8> = (0..len).map(|_| (rng.gen::<u32>() & 0xFF) as u8).collect();
        send_raw_then_expect_alive(&server, &garbage);
    }
    server.shutdown();
}

/// Drip-feeds `frames` to the server over one connection in `chunks`-sized
/// slices (with a flush and a pause between writes so the event loop sees
/// genuinely partial frames), then reads back `expected` responses.
fn send_in_chunks(
    addr: std::net::SocketAddr,
    bytes: &[u8],
    chunk: usize,
    expected: usize,
) -> Vec<Response> {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for piece in bytes.chunks(chunk.max(1)) {
        writer.write_all(piece).unwrap();
        writer.flush().unwrap();
        // Give the event loop a chance to wake and observe the partial
        // frame before the next piece lands.
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    (0..expected)
        .map(|i| {
            read_response(&mut reader)
                .unwrap_or_else(|f| panic!("response {i}: fault {}", f.error))
                .unwrap_or_else(|| panic!("response {i}: server closed early"))
        })
        .collect()
}

#[test]
fn byte_at_a_time_delivery_decodes_and_serves_every_request() {
    let server = Server::bind("127.0.0.1:0").unwrap();
    let entry = CatalogEntry::build(
        paper_example().take_instances(2),
        Scheme::oblivious(0.5),
        1,
        5,
        0,
    )
    .unwrap();
    server.catalog().insert("example", entry);

    // Three pipelined requests, delivered one byte per write: the server's
    // incremental decoder must buffer across reads and answer all three,
    // in order.
    let mut bytes = Vec::new();
    write_message(&mut bytes, &Request::Ping).unwrap();
    write_message(&mut bytes, &Request::ListCatalog).unwrap();
    write_message(
        &mut bytes,
        &Request::Estimate {
            sketch: "example".into(),
            estimator: "max_oblivious".into(),
            statistic: "max_dominance".into(),
        },
    )
    .unwrap();
    let responses = send_in_chunks(server.local_addr(), &bytes, 1, 3);
    assert!(matches!(responses[0], Response::Pong));
    assert!(matches!(&responses[1], Response::Catalog(rows) if rows.len() == 1));
    assert!(matches!(responses[2], Response::Estimated(_)));
    server.shutdown();
}

#[test]
fn every_split_offset_of_a_pipelined_pair_serves_both_requests() {
    let server = Server::bind("127.0.0.1:0").unwrap();

    // Two back-to-back frames split into exactly two writes at EVERY byte
    // offset: every possible partial-frame boundary (mid-magic, mid-length,
    // mid-payload, mid-checksum, and across the frame seam) must decode to
    // the same two responses.
    let mut bytes = Vec::new();
    write_message(&mut bytes, &Request::ListCatalog).unwrap();
    write_message(&mut bytes, &Request::Ping).unwrap();
    for cut in 0..=bytes.len() {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(&bytes[..cut]).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_micros(200));
        writer.write_all(&bytes[cut..]).unwrap();
        writer.flush().unwrap();
        for (i, want_catalog) in [(0usize, true), (1, false)] {
            let response = read_response(&mut reader)
                .unwrap_or_else(|f| panic!("cut {cut}, response {i}: fault {}", f.error))
                .unwrap_or_else(|| panic!("cut {cut}, response {i}: closed early"));
            match (want_catalog, response) {
                (true, Response::Catalog(_)) | (false, Response::Pong) => {}
                (_, other) => panic!("cut {cut}, response {i}: got {other:?}"),
            }
        }
    }
    server.shutdown();
}

#[test]
fn mid_frame_hangup_is_answered_with_a_typed_truncation_error() {
    let server = Server::bind("127.0.0.1:0").unwrap();
    let mut whole = Vec::new();
    write_message(&mut whole, &Request::ListCatalog).unwrap();

    // Cut everywhere INSIDE the frame (cut 0 is a clean close, not a
    // truncation).  The server must answer with a typed protocol error
    // before closing — never silently drop the connection.
    for cut in 1..whole.len() {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(&whole[..cut]).unwrap();
        writer.flush().unwrap();
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        let response = read_response(&mut reader)
            .unwrap_or_else(|f| panic!("cut {cut}: fault {}", f.error))
            .unwrap_or_else(|| panic!("cut {cut}: closed without a typed error"));
        assert!(
            matches!(response, Response::Error(ServeError::Protocol { .. })),
            "cut {cut}: got {response:?}"
        );
        // And the connection closes after it (fatal fault).
        assert!(read_response(&mut reader).unwrap().is_none(), "cut {cut}");
    }
    server.shutdown();
}

#[test]
fn response_decoder_survives_mutations_of_real_responses() {
    // Exercise the client-side decoder against mutated server output.
    let server = Server::bind("127.0.0.1:0").unwrap();
    let entry = CatalogEntry::build(
        paper_example().take_instances(2),
        Scheme::oblivious(0.5),
        1,
        5,
        0,
    )
    .unwrap();
    server.catalog().insert("example", entry);
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let report = client
        .estimate("example", "max_oblivious", "max_dominance")
        .unwrap();
    server.shutdown();

    let mut frame = Vec::new();
    write_message(&mut frame, &Response::Estimated(report)).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..2000 {
        let mut mutated = frame.clone();
        let i = rng.gen_range(0usize..mutated.len());
        mutated[i] ^= 1 << rng.gen_range(0u32..8);
        let _ = read_response(&mut mutated.as_slice());
        // Truncations too.
        let cut = rng.gen_range(0usize..mutated.len());
        let _ = read_response(&mut &mutated[..cut]);
    }
}
