//! Snapshot framing: magic, format version, payload length, and checksum.
//!
//! A snapshot is one self-describing frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PIES"
//! 4       4     format version (u32 LE)
//! 8       8     payload length in bytes (u64 LE)
//! 16      n     payload (Encode-d values, little-endian)
//! 16+n    8     FNV-1a 64 checksum of version ‖ length ‖ payload (u64 LE)
//! ```
//!
//! [`SnapshotWriter`] buffers the payload so the header can state its exact
//! length, then flushes header + payload + checksum in one pass.
//! [`SnapshotReader`] validates magic, version, length, and checksum *before*
//! handing any bytes to `Decode` impls, so decoders only ever see payloads
//! that were written whole by a compatible build; anything else surfaces as
//! a typed [`StoreError`].
//!
//! The frame itself (layout, checksum, validation order) is the shared
//! [`crate::frame`] layer; snapshots instantiate it with the `PIES` magic
//! and [`FORMAT_VERSION`], the `pie-serve` wire protocol with its own.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::codec::{Decode, Encode};
use crate::error::StoreError;
use crate::frame::{read_frame, write_frame};

pub use crate::frame::Checksum;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"PIES";

/// The snapshot format version this build writes and reads.
///
/// Bump on any layout change; readers reject other versions with
/// [`StoreError::UnsupportedVersion`] instead of misinterpreting bytes.
/// The frame header layout itself is frozen across versions — see the
/// [`crate::frame`] version policy.
pub const FORMAT_VERSION: u32 = 1;

/// Writes one snapshot frame to an [`io::Write`](Write) sink.
///
/// Values are appended with [`SnapshotWriter::write`]; nothing reaches the
/// sink until [`SnapshotWriter::finish`], which emits the complete frame
/// (header, payload, checksum) and returns the sink.
#[derive(Debug)]
pub struct SnapshotWriter<W: Write> {
    sink: W,
    payload: Vec<u8>,
}

impl<W: Write> SnapshotWriter<W> {
    /// Starts a snapshot frame over `sink`.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            payload: Vec::new(),
        }
    }

    /// Appends one encodable value to the payload.
    ///
    /// # Errors
    /// Propagates encoding failures (buffering itself cannot fail).
    pub fn write<T: Encode + ?Sized>(&mut self, value: &T) -> Result<(), StoreError> {
        value.encode(&mut self.payload)
    }

    /// Bytes buffered so far (useful for size accounting in benches).
    #[must_use]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Writes the complete frame to the sink and returns it.
    ///
    /// # Errors
    /// Propagates I/O failures from the sink.
    pub fn finish(mut self) -> Result<W, StoreError> {
        write_frame(&mut self.sink, MAGIC, FORMAT_VERSION, &self.payload)?;
        Ok(self.sink)
    }
}

/// Reads one snapshot frame, validating it fully up front.
///
/// Construction consumes the whole frame from the source and verifies
/// magic, version, length, and checksum; [`SnapshotReader::read`] then
/// decodes values out of the validated payload.
#[derive(Debug)]
pub struct SnapshotReader {
    payload: Vec<u8>,
    pos: usize,
}

impl SnapshotReader {
    /// Reads and validates one snapshot frame from `src`.
    ///
    /// # Errors
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::Truncated`], or [`StoreError::ChecksumMismatch`] when
    /// the frame is not a whole, compatible snapshot.
    pub fn new<R: Read>(mut src: R) -> Result<Self, StoreError> {
        let payload = read_frame(&mut src, MAGIC, FORMAT_VERSION, u64::MAX)?;
        Ok(Self { payload, pos: 0 })
    }

    /// Decodes the next value out of the payload.
    ///
    /// # Errors
    /// Propagates decoding failures; reading past the payload end yields
    /// [`StoreError::Truncated`].
    pub fn read<T: Decode>(&mut self) -> Result<T, StoreError> {
        let mut slice = &self.payload[self.pos..];
        let before = slice.len();
        let value = T::decode(&mut (&mut slice as &mut dyn Read))?;
        self.pos += before - slice.len();
        Ok(value)
    }

    /// Number of payload bytes not yet decoded.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    /// [`StoreError::InvalidValue`] if undecoded bytes remain — usually a
    /// sign the reader and writer disagree about the payload schema.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::InvalidValue {
                what: "trailing bytes after snapshot payload",
            })
        }
    }
}

/// Writes `value` as a single-value snapshot file at `path` (buffered).
///
/// # Errors
/// Propagates encoding and file I/O failures.
pub fn write_snapshot_file<T: Encode + ?Sized>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), StoreError> {
    let file = File::create(path)?;
    let mut writer = SnapshotWriter::new(BufWriter::new(file));
    writer.write(value)?;
    writer.finish()?;
    Ok(())
}

/// Reads a single-value snapshot file written by [`write_snapshot_file`].
///
/// # Errors
/// Propagates validation and decoding failures; requires the payload to
/// contain exactly one value.
pub fn read_snapshot_file<T: Decode>(path: impl AsRef<Path>) -> Result<T, StoreError> {
    let file = File::open(path)?;
    let mut reader = SnapshotReader::new(BufReader::new(file))?;
    let value = reader.read::<T>()?;
    reader.finish()?;
    Ok(value)
}

/// Encodes `value` into a complete in-memory snapshot frame.
///
/// # Errors
/// Propagates encoding failures.
pub fn snapshot_to_vec<T: Encode + ?Sized>(value: &T) -> Result<Vec<u8>, StoreError> {
    let mut writer = SnapshotWriter::new(Vec::new());
    writer.write(value)?;
    writer.finish()
}

/// Decodes a single value from a complete in-memory snapshot frame.
///
/// # Errors
/// Propagates validation and decoding failures; requires the payload to
/// contain exactly one value.
pub fn snapshot_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, StoreError> {
    let mut reader = SnapshotReader::new(bytes)?;
    let value = reader.read::<T>()?;
    reader.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let bytes = snapshot_to_vec(&vec![1.5f64, -2.5, 3.25]).unwrap();
        let back: Vec<f64> = snapshot_from_slice(&bytes).unwrap();
        assert_eq!(back, vec![1.5, -2.5, 3.25]);
    }

    #[test]
    fn multiple_values_in_one_frame() {
        let mut w = SnapshotWriter::new(Vec::new());
        w.write(&7u64).unwrap();
        w.write(&String::from("hello")).unwrap();
        assert!(w.payload_len() > 8);
        let bytes = w.finish().unwrap();
        let mut r = SnapshotReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.read::<u64>().unwrap(), 7);
        assert_eq!(r.read::<String>().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = snapshot_to_vec(&1u64).unwrap();
        bytes[0] = b'X';
        let err = snapshot_from_slice::<u64>(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = snapshot_to_vec(&1u64).unwrap();
        bytes[4] = 99;
        let err = snapshot_from_slice::<u64>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            StoreError::UnsupportedVersion { found: 99, .. }
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = snapshot_to_vec(&vec![1.0f64, 2.0]).unwrap();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::new(&bytes[..cut]).map(|_| ()).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let bytes = snapshot_to_vec(&vec![1.0f64, 2.0]).unwrap();
        // Flipping any single bit in version, length, payload, or checksum
        // must be caught (magic corruption surfaces as BadMagic).
        for i in 4..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            let result = SnapshotReader::new(corrupted.as_slice()).map(|_| ());
            assert!(result.is_err(), "corruption at byte {i} went unnoticed");
        }
    }

    #[test]
    fn unconsumed_payload_is_an_error() {
        let bytes = snapshot_to_vec(&(1u64, 2u64)).unwrap();
        let reader = SnapshotReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 16);
        assert!(matches!(
            reader.finish(),
            Err(StoreError::InvalidValue { .. })
        ));
        let err = snapshot_from_slice::<u64>(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::InvalidValue { .. }));
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pie-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.pies");
        write_snapshot_file(&path, &vec![42u64, 7]).unwrap();
        let back: Vec<u64> = read_snapshot_file(&path).unwrap();
        assert_eq!(back, vec![42, 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = Checksum::new();
        a.update(&[1, 2]);
        let mut b = Checksum::new();
        b.update(&[2, 1]);
        assert_ne!(a.value(), b.value());
        assert_eq!(Checksum::new().value(), Checksum::default().value());
    }
}
