//! # pie-store — versioned binary snapshots for sketches and reports
//!
//! Mergeable-summary systems earn their keep through a compact, versioned
//! wire format: a sketch that only lives in one process's heap dies with
//! that process.  This crate is the persistence substrate of the workspace —
//! pure `std`, no dependencies — providing:
//!
//! * [`Encode`] / [`Decode`] — little-endian, bit-exact binary codec traits
//!   (floats round-trip through their IEEE-754 bit patterns), with
//!   primitive, tuple, `Option`, `Vec`, and `String` implementations
//!   ([`codec`]);
//! * [`frame`] — the shared self-describing frame layer (magic, version,
//!   payload length, FNV-1a checksum) over any [`std::io::Write`] /
//!   [`std::io::Read`], with a size-bounded reader for untrusted streams;
//!   snapshot files and the `pie-serve` wire protocol are both instances
//!   of it;
//! * [`SnapshotWriter`] / [`SnapshotReader`] — one frame per snapshot,
//!   validated fully before any payload byte reaches a decoder
//!   ([`snapshot`]);
//! * [`StoreError`] — typed failures for every corruption mode: truncation,
//!   bad magic, unsupported version, checksum mismatch, invalid tags and
//!   values, manifest mismatches ([`error`]).  Malformed input never
//!   panics.
//!
//! The concrete codecs live next to the types they serialize: every sketch
//! family in `pie-sampling` (oblivious Poisson, PPS Poisson, bottom-k,
//! VarOpt) plus `InstanceSample` and `SeedAssignment` implement
//! [`Encode`]/[`Decode`] there, `RunningStats` and `Evaluation` in
//! `pie-analysis`, and pipeline reports, checkpoint manifests, and the
//! cross-process shard-merge path in the umbrella crate.
//!
//! # Determinism contract
//!
//! Encoding is canonical: the same logical value always produces the same
//! bytes, and `decode(encode(x))` reproduces `x` *bitwise* — which is what
//! lets checkpoint → resume and cross-process shard merges yield reports
//! bit-identical to an uninterrupted single-process run.
//!
//! ```
//! use pie_store::{snapshot_from_slice, snapshot_to_vec};
//!
//! let stats = vec![(1u64, 2.5f64), (7, -0.0)];
//! let bytes = snapshot_to_vec(&stats).unwrap();
//! let back: Vec<(u64, f64)> = snapshot_from_slice(&bytes).unwrap();
//! assert_eq!(back, stats);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod error;
pub mod frame;
pub mod snapshot;

pub use codec::{decode_from_slice, encode_to_vec, Decode, Encode};
pub use error::StoreError;
pub use frame::Checksum;
pub use snapshot::{
    read_snapshot_file, snapshot_from_slice, snapshot_to_vec, write_snapshot_file, SnapshotReader,
    SnapshotWriter, FORMAT_VERSION, MAGIC,
};
