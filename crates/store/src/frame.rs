//! The shared frame layer: magic, version, payload length, checksum.
//!
//! Both persistence surfaces of the workspace speak the same self-describing
//! frame, differing only in their magic bytes and version constant:
//!
//! * snapshot files ([`crate::snapshot`], magic `PIES`) — one frame per
//!   file, validated before any payload byte reaches a decoder;
//! * the `pie-serve` wire protocol (magic `PIEW`) — one frame per request
//!   or response on a TCP stream.
//!
//! ```text
//! offset  size  field
//! 0       4     magic
//! 4       4     version (u32 LE)
//! 8       8     payload length in bytes (u64 LE)
//! 16      n     payload (Encode-d values, little-endian)
//! 16+n    8     FNV-1a 64 checksum of version ‖ length ‖ payload (u64 LE)
//! ```
//!
//! # Version policy
//!
//! The 16-byte header layout (magic, version, length) is **frozen across
//! versions**: the version field only governs the payload's semantics.  This
//! lets a reader that encounters an unsupported version still consume the
//! frame whole — [`read_frame`] skips its payload and checksum before
//! returning [`StoreError::UnsupportedVersion`] — so a long-lived connection
//! survives a frame from a newer build instead of losing stream sync.
//!
//! # Resynchronization contract
//!
//! [`read_frame`] either consumes exactly one whole frame or fails in a way
//! that leaves the stream unusable; the error variant tells the caller
//! which.  After [`StoreError::UnsupportedVersion`],
//! [`StoreError::ChecksumMismatch`], or any payload-decoding failure the
//! stream is positioned at the next frame boundary and may keep serving;
//! after [`StoreError::BadMagic`], [`StoreError::FrameTooLarge`],
//! [`StoreError::Truncated`], or an I/O error the boundary is unknown and
//! the stream must be dropped.  [`recoverable`] encodes this classification.

use std::io::{Read, Write};

use crate::error::StoreError;

/// Bytes in a frame header: magic (4) + version (4) + payload length (8).
pub const HEADER_LEN: usize = 16;

/// Bytes in a frame trailer: the FNV-1a 64 checksum.
pub const TRAILER_LEN: usize = 8;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a 64 checksum over a byte stream.
///
/// FNV is not cryptographic; it guards against storage/transport corruption
/// and truncation, which is all a trusted-frame format needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The checksum value accumulated so far.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

/// The checksum of one frame: FNV-1a 64 over version ‖ length ‖ payload.
fn frame_checksum(version_bytes: &[u8; 4], len_bytes: &[u8; 8], payload: &[u8]) -> u64 {
    let mut checksum = Checksum::new();
    checksum.update(version_bytes);
    checksum.update(len_bytes);
    checksum.update(payload);
    checksum.value()
}

/// Writes one complete frame (header, payload, checksum) to `sink` and
/// flushes it.
///
/// # Errors
/// Propagates I/O failures from the sink.
pub fn write_frame<W: Write>(
    sink: &mut W,
    magic: [u8; 4],
    version: u32,
    payload: &[u8],
) -> Result<(), StoreError> {
    let version_bytes = version.to_le_bytes();
    let len_bytes = (payload.len() as u64).to_le_bytes();
    let checksum = frame_checksum(&version_bytes, &len_bytes, payload);
    sink.write_all(&magic)?;
    sink.write_all(&version_bytes)?;
    sink.write_all(&len_bytes)?;
    sink.write_all(payload)?;
    sink.write_all(&checksum.to_le_bytes())?;
    sink.flush()?;
    Ok(())
}

/// Reads and validates one frame from `src`, returning its payload.
///
/// Validation order: magic, length bound, then — after consuming the whole
/// frame — version and checksum (see the [module docs](self) for why a wrong
/// version still consumes the frame).  The payload is read through
/// [`Read::take`] rather than preallocated, so a corrupted length cannot
/// trigger a huge allocation; `max_payload` additionally rejects lengths the
/// caller is unwilling to even stream past (a network server's defense
/// against a hostile length prefix).
///
/// # Errors
/// * [`StoreError::Truncated`] — input ended inside the frame;
/// * [`StoreError::BadMagic`] — the leading bytes are not `magic`;
/// * [`StoreError::FrameTooLarge`] — claimed length exceeds `max_payload`;
/// * [`StoreError::UnsupportedVersion`] — frame consumed, other version;
/// * [`StoreError::ChecksumMismatch`] — frame consumed, corrupt payload.
pub fn read_frame<R: Read>(
    src: &mut R,
    magic: [u8; 4],
    version: u32,
    max_payload: u64,
) -> Result<Vec<u8>, StoreError> {
    let mut found_magic = [0u8; 4];
    read_exact(src, &mut found_magic, "frame magic")?;
    read_frame_after_magic(src, found_magic, magic, version, max_payload)
}

/// Like [`read_frame`], but a clean end of input *before the first magic
/// byte* returns `Ok(None)` instead of [`StoreError::Truncated`] — the shape
/// a connection loop needs to tell "peer hung up between requests" from
/// "frame cut short".
///
/// # Errors
/// As [`read_frame`], except the described clean-EOF case.
pub fn read_frame_or_eof<R: Read>(
    src: &mut R,
    magic: [u8; 4],
    version: u32,
    max_payload: u64,
) -> Result<Option<Vec<u8>>, StoreError> {
    let mut first = [0u8; 1];
    let mut filled = 0;
    while filled < first.len() {
        match src.read(&mut first[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(StoreError::Truncated {
                    context: "frame magic",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    let mut found_magic = [first[0], 0, 0, 0];
    read_exact(src, &mut found_magic[1..], "frame magic")?;
    read_frame_after_magic(src, found_magic, magic, version, max_payload).map(Some)
}

/// The body of [`read_frame`] once the four magic bytes are in hand.
fn read_frame_after_magic<R: Read>(
    src: &mut R,
    found_magic: [u8; 4],
    magic: [u8; 4],
    version: u32,
    max_payload: u64,
) -> Result<Vec<u8>, StoreError> {
    if found_magic != magic {
        return Err(StoreError::BadMagic { found: found_magic });
    }
    let mut version_bytes = [0u8; 4];
    read_exact(src, &mut version_bytes, "frame version")?;
    let mut len_bytes = [0u8; 8];
    read_exact(src, &mut len_bytes, "frame payload length")?;
    let len = u64::from_le_bytes(len_bytes);
    if len > max_payload {
        return Err(StoreError::FrameTooLarge {
            len,
            max: max_payload,
        });
    }
    let len = usize::try_from(len).map_err(|_| StoreError::InvalidValue {
        what: "frame payload length does not fit in usize on this host",
    })?;
    // Read the payload without trusting the length for preallocation: a
    // corrupted header must not trigger a huge allocation, so take() the
    // claimed length and let a short stream surface as Truncated.
    let mut payload = Vec::new();
    let read = src.take(len as u64).read_to_end(&mut payload)?;
    if read != len {
        return Err(StoreError::Truncated {
            context: "frame payload",
        });
    }
    let mut checksum_bytes = [0u8; 8];
    read_exact(src, &mut checksum_bytes, "frame checksum")?;
    // The whole frame is consumed from here on: version and checksum
    // failures leave the stream at the next frame boundary.
    let found_version = u32::from_le_bytes(version_bytes);
    if found_version != version {
        return Err(StoreError::UnsupportedVersion {
            found: found_version,
            supported: version,
        });
    }
    let expected = u64::from_le_bytes(checksum_bytes);
    let actual = frame_checksum(&version_bytes, &len_bytes, &payload);
    if actual != expected {
        return Err(StoreError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

/// Whether the stream is still positioned at a frame boundary after this
/// read error — i.e. whether a connection may keep serving (see the
/// [module docs](self) for the classification).
///
/// Payload-*decoding* failures ([`StoreError::InvalidTag`],
/// [`StoreError::InvalidValue`]) only arise after the frame was consumed
/// whole, so they are recoverable too.
#[must_use]
pub fn recoverable(error: &StoreError) -> bool {
    matches!(
        error,
        StoreError::UnsupportedVersion { .. }
            | StoreError::ChecksumMismatch { .. }
            | StoreError::InvalidTag { .. }
            | StoreError::InvalidValue { .. }
            | StoreError::ManifestMismatch { .. }
    )
}

/// An incremental, push-based frame parser — the nonblocking twin of
/// [`read_frame`].
///
/// A readiness-polled connection cannot block until a whole frame arrives:
/// bytes show up in arbitrary slices as the socket becomes readable.
/// `FrameDecoder` accumulates those slices ([`extend`](Self::extend)) and
/// yields complete, fully-validated payloads ([`next_frame`](Self::next_frame))
/// with **exactly** the same validation order, error variants, and
/// [`recoverable`] classification as the blocking reader — byte-at-a-time
/// delivery and any split of a valid frame decode identically to handing
/// [`read_frame`] the whole buffer.
///
/// Early rejection mirrors the blocking path: a wrong magic fails as soon
/// as four bytes are buffered, and a hostile length prefix fails as soon as
/// the 16-byte header is buffered — *before* any payload byte is retained,
/// so a peer cannot force the decoder to buffer past `max_payload`.
///
/// After a recoverable error the offending frame has been discarded and the
/// decoder is positioned at the next frame boundary; after a fatal error
/// the stream position is unknowable and the decoder refuses further use
/// (every subsequent call returns the fatal error again).
#[derive(Debug)]
pub struct FrameDecoder {
    magic: [u8; 4],
    version: u32,
    max_payload: u64,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily).
    pos: usize,
    /// A fatal framing error latches the decoder dead.
    dead: Option<&'static str>,
}

impl FrameDecoder {
    /// A decoder for frames with the given magic, version, and payload
    /// bound (the same parameters as [`read_frame`]).
    #[must_use]
    pub fn new(magic: [u8; 4], version: u32, max_payload: u64) -> Self {
        Self {
            magic,
            version,
            max_payload,
            buf: Vec::new(),
            pos: 0,
            dead: None,
        }
    }

    /// Appends newly-received bytes to the decoder's buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: the parser only ever consumes whole
        // frames, so `pos` bytes at the front are permanently dead.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete frame's payload, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes" — never an error, matching the
    /// level-triggered shape a poll loop wants.  Call in a loop after each
    /// [`extend`](Self::extend): several frames may have arrived in one
    /// read.
    ///
    /// # Errors
    /// The same variants as [`read_frame`], under the same classification:
    /// after a [`recoverable`] error the bad frame is discarded and parsing
    /// may continue; after a fatal one the decoder is latched dead and
    /// returns the same error forever.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, StoreError> {
        if let Some(context) = self.dead {
            return Err(StoreError::Truncated { context });
        }
        let avail = &self.buf[self.pos..];
        // Validate the magic as soon as its bytes are here (fatal).
        if avail.len() < 4 {
            if !avail.is_empty() && avail != &self.magic[..avail.len()] {
                self.dead = Some("frame magic");
                return Err(StoreError::BadMagic {
                    found: partial_magic(avail),
                });
            }
            return Ok(None);
        }
        let found_magic: [u8; 4] = avail[..4].try_into().expect("length checked");
        if found_magic != self.magic {
            self.dead = Some("frame magic");
            return Err(StoreError::BadMagic { found: found_magic });
        }
        // Validate the length bound as soon as the header is here (fatal):
        // nothing of an over-large frame is ever buffered knowingly.
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let version_bytes: [u8; 4] = avail[4..8].try_into().expect("length checked");
        let len_bytes: [u8; 8] = avail[8..16].try_into().expect("length checked");
        let len = u64::from_le_bytes(len_bytes);
        if len > self.max_payload {
            self.dead = Some("frame payload length");
            return Err(StoreError::FrameTooLarge {
                len,
                max: self.max_payload,
            });
        }
        let len = usize::try_from(len).map_err(|_| {
            self.dead = Some("frame payload length");
            StoreError::InvalidValue {
                what: "frame payload length does not fit in usize on this host",
            }
        })?;
        let total = HEADER_LEN + len + TRAILER_LEN;
        if avail.len() < total {
            return Ok(None);
        }
        // The whole frame is buffered: consume it, then validate version
        // and checksum — both recoverable, the stream stays at a boundary.
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        let checksum_bytes: [u8; 8] = avail[HEADER_LEN + len..total]
            .try_into()
            .expect("length checked");
        self.pos += total;
        let found_version = u32::from_le_bytes(version_bytes);
        if found_version != self.version {
            return Err(StoreError::UnsupportedVersion {
                found: found_version,
                supported: self.version,
            });
        }
        let expected = u64::from_le_bytes(checksum_bytes);
        let actual = frame_checksum(&version_bytes, &len_bytes, &payload);
        if actual != expected {
            return Err(StoreError::ChecksumMismatch { expected, actual });
        }
        Ok(Some(payload))
    }
}

/// Pads a short magic prefix for the [`StoreError::BadMagic`] report.
fn partial_magic(prefix: &[u8]) -> [u8; 4] {
    let mut found = [0u8; 4];
    found[..prefix.len()].copy_from_slice(prefix);
    found
}

fn read_exact<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), StoreError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TSTF";

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, MAGIC, 3, payload).unwrap();
        bytes
    }

    #[test]
    fn roundtrip() {
        let bytes = frame(b"hello frame");
        assert_eq!(bytes.len(), HEADER_LEN + 11 + TRAILER_LEN);
        let payload = read_frame(&mut bytes.as_slice(), MAGIC, 3, u64::MAX).unwrap();
        assert_eq!(payload, b"hello frame");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = frame(b"");
        let payload = read_frame(&mut bytes.as_slice(), MAGIC, 3, 0).unwrap();
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = frame(b"x");
        bytes[0] = b'Z';
        let err = read_frame(&mut bytes.as_slice(), MAGIC, 3, u64::MAX).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }));
        assert!(!recoverable(&err));
    }

    #[test]
    fn wrong_version_consumes_the_whole_frame() {
        let mut bytes = frame(b"abc");
        let mut tail = frame(b"next");
        bytes[4] = 9;
        bytes.append(&mut tail);
        let mut src = bytes.as_slice();
        let err = read_frame(&mut src, MAGIC, 3, u64::MAX).unwrap_err();
        assert!(matches!(
            err,
            StoreError::UnsupportedVersion {
                found: 9,
                supported: 3
            }
        ));
        assert!(recoverable(&err));
        // The stream is at the next frame boundary.
        let payload = read_frame(&mut src, MAGIC, 3, u64::MAX).unwrap();
        assert_eq!(payload, b"next");
    }

    #[test]
    fn checksum_mismatch_consumes_the_whole_frame() {
        let mut bytes = frame(b"abcd");
        let mut tail = frame(b"next");
        let payload_start = HEADER_LEN;
        bytes[payload_start] ^= 0x01;
        bytes.append(&mut tail);
        let mut src = bytes.as_slice();
        let err = read_frame(&mut src, MAGIC, 3, u64::MAX).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }));
        assert!(recoverable(&err));
        let payload = read_frame(&mut src, MAGIC, 3, u64::MAX).unwrap();
        assert_eq!(payload, b"next");
    }

    #[test]
    fn oversized_length_is_rejected_without_reading_the_payload() {
        let mut bytes = frame(&[0u8; 64]);
        // Claim an absurd payload length.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice(), MAGIC, 3, 1024).unwrap_err();
        assert!(matches!(
            err,
            StoreError::FrameTooLarge { len: u64::MAX, .. }
        ));
        assert!(!recoverable(&err));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = frame(b"truncate me");
        for cut in 0..bytes.len() {
            let err = read_frame(&mut &bytes[..cut], MAGIC, 3, u64::MAX).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn eof_variant_distinguishes_clean_hangup() {
        let empty: &[u8] = &[];
        assert!(read_frame_or_eof(&mut { empty }, MAGIC, 3, u64::MAX)
            .unwrap()
            .is_none());
        // One stray byte, then EOF: that is a truncation, not a clean close.
        let stray: &[u8] = b"T";
        let err = read_frame_or_eof(&mut { stray }, MAGIC, 3, u64::MAX).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }));
        // A whole frame reads normally.
        let bytes = frame(b"ok");
        let payload = read_frame_or_eof(&mut bytes.as_slice(), MAGIC, 3, u64::MAX)
            .unwrap()
            .unwrap();
        assert_eq!(payload, b"ok");
    }

    #[test]
    fn decoder_matches_blocking_reader_at_every_split() {
        let mut stream = frame(b"first");
        stream.extend_from_slice(&frame(b""));
        stream.extend_from_slice(&frame(b"third frame payload"));
        // Whole-buffer, byte-at-a-time, and every two-way split must all
        // yield the same three payloads.
        let deliveries: Vec<Vec<&[u8]>> = std::iter::once(vec![&stream[..]])
            .chain((1..stream.len()).map(|cut| vec![&stream[..cut], &stream[cut..]]))
            .chain(std::iter::once(stream.chunks(1).collect::<Vec<&[u8]>>()))
            .collect();
        for slices in deliveries {
            let mut decoder = FrameDecoder::new(MAGIC, 3, u64::MAX);
            let mut frames = Vec::new();
            for slice in slices {
                decoder.extend(slice);
                while let Some(payload) = decoder.next_frame().unwrap() {
                    frames.push(payload);
                }
            }
            assert_eq!(
                frames,
                vec![
                    b"first".to_vec(),
                    b"".to_vec(),
                    b"third frame payload".to_vec()
                ]
            );
            assert_eq!(decoder.buffered(), 0);
        }
    }

    #[test]
    fn decoder_needs_more_bytes_is_not_an_error() {
        let bytes = frame(b"pending");
        let mut decoder = FrameDecoder::new(MAGIC, 3, u64::MAX);
        for cut in 0..bytes.len() {
            decoder.extend(&bytes[cut..cut + 1]);
            if cut + 1 < bytes.len() {
                assert!(decoder.next_frame().unwrap().is_none(), "cut {cut}");
            }
        }
        assert_eq!(decoder.next_frame().unwrap().unwrap(), b"pending");
    }

    #[test]
    fn decoder_recovers_after_wrong_version_and_checksum() {
        let mut bad_version = frame(b"abc");
        bad_version[4] = 9;
        let mut bad_checksum = frame(b"abcd");
        bad_checksum[HEADER_LEN] ^= 0x01;
        let good = frame(b"good");
        let mut decoder = FrameDecoder::new(MAGIC, 3, u64::MAX);
        decoder.extend(&bad_version);
        decoder.extend(&bad_checksum);
        decoder.extend(&good);
        let err = decoder.next_frame().unwrap_err();
        assert!(matches!(
            err,
            StoreError::UnsupportedVersion { found: 9, .. }
        ));
        assert!(recoverable(&err));
        let err = decoder.next_frame().unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }));
        assert!(recoverable(&err));
        assert_eq!(decoder.next_frame().unwrap().unwrap(), b"good");
    }

    #[test]
    fn decoder_rejects_bad_magic_and_oversized_length_early_and_latches() {
        // Wrong first byte: rejected before the full header arrives.
        let mut decoder = FrameDecoder::new(MAGIC, 3, u64::MAX);
        decoder.extend(b"Z");
        let err = decoder.next_frame().unwrap_err();
        assert!(matches!(err, StoreError::BadMagic { .. }));
        assert!(!recoverable(&err));
        // Dead decoders stay dead, even fed a valid frame.
        decoder.extend(&frame(b"late"));
        assert!(decoder.next_frame().is_err());

        // Hostile length prefix: rejected at the header, payload unread.
        let mut bytes = frame(b"x");
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut decoder = FrameDecoder::new(MAGIC, 3, 1024);
        decoder.extend(&bytes[..HEADER_LEN]);
        let err = decoder.next_frame().unwrap_err();
        assert!(matches!(
            err,
            StoreError::FrameTooLarge { len: u64::MAX, .. }
        ));
        assert!(!recoverable(&err));
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = Checksum::new();
        a.update(&[1, 2]);
        let mut b = Checksum::new();
        b.update(&[2, 1]);
        assert_ne!(a.value(), b.value());
        assert_eq!(Checksum::new().value(), Checksum::default().value());
    }
}
