//! The typed failure modes of snapshot encoding and decoding.
//!
//! Decoding is exercised on bytes the process did not produce — files from
//! older builds, other machines, or interrupted writes — so every corruption
//! mode surfaces as a variant of [`StoreError`], never as a panic.

use std::fmt;
use std::io;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O operation failed (other than a clean end-of-input,
    /// which is reported as [`StoreError::Truncated`]).
    Io(io::Error),
    /// The input ended before the expected data was read — the snapshot was
    /// truncated (e.g. an interrupted write or a partial download).
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// The leading magic bytes are not a snapshot header; the file is not a
    /// snapshot at all.
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The snapshot was written with a format version this build does not
    /// understand.
    UnsupportedVersion {
        /// The version recorded in the snapshot header.
        found: u32,
        /// The (single) version this build reads and writes.
        supported: u32,
    },
    /// The frame header claims a payload longer than the reader's size
    /// limit — a hostile or garbage length prefix on an untrusted stream.
    FrameTooLarge {
        /// The payload length claimed by the header.
        len: u64,
        /// The reader's configured maximum payload length.
        max: u64,
    },
    /// The payload checksum does not match the header — the bytes were
    /// corrupted in storage or transit.
    ChecksumMismatch {
        /// The checksum recorded in the snapshot.
        expected: u64,
        /// The checksum computed over the payload actually read.
        actual: u64,
    },
    /// A discriminant tag does not name any variant of the decoded type.
    InvalidTag {
        /// The type whose tag was invalid.
        what: &'static str,
        /// The tag value found.
        tag: u32,
    },
    /// A decoded value violates an invariant of its type (a length that
    /// cannot fit, a float where a finite value is required, …).
    InvalidValue {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// A manifest field does not match the configuration it is being resumed
    /// or merged into.
    ManifestMismatch {
        /// The manifest field that disagrees.
        field: &'static str,
        /// The value the running configuration expected.
        expected: String,
        /// The value recorded in the manifest.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            Self::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic bytes {found:02x?}")
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build supports {supported})"
            ),
            Self::FrameTooLarge { len, max } => write!(
                f,
                "frame claims a {len}-byte payload, above the reader's {max}-byte limit"
            ),
            Self::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            Self::InvalidTag { what, tag } => {
                write!(f, "invalid {what} tag {tag} in snapshot")
            }
            Self::InvalidValue { what } => {
                write!(f, "invalid snapshot value: {what}")
            }
            Self::ManifestMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "snapshot manifest mismatch on {field}: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    /// Converts an I/O error, folding clean end-of-file into
    /// [`StoreError::Truncated`] so callers see one canonical
    /// "input ended early" variant.
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Truncated {
                context: "snapshot bytes",
            }
        } else {
            Self::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::Truncated { context: "header" },
                "truncated while reading header",
            ),
            (StoreError::BadMagic { found: *b"nope" }, "bad magic"),
            (
                StoreError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                StoreError::ChecksumMismatch {
                    expected: 1,
                    actual: 2,
                },
                "checksum mismatch",
            ),
            (
                StoreError::InvalidTag {
                    what: "scheme",
                    tag: 77,
                },
                "scheme tag 77",
            ),
            (
                StoreError::InvalidValue { what: "length" },
                "invalid snapshot value",
            ),
            (
                StoreError::ManifestMismatch {
                    field: "shards",
                    expected: "2".into(),
                    found: "3".into(),
                },
                "mismatch on shards",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn eof_maps_to_truncated() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(
            StoreError::from(eof),
            StoreError::Truncated { .. }
        ));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "denied");
        assert!(matches!(StoreError::from(other), StoreError::Io(_)));
    }
}
