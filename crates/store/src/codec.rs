//! The [`Encode`] / [`Decode`] traits and their primitive implementations.
//!
//! Every multi-byte value is written **little-endian**, whatever the host —
//! snapshots written on one machine decode bit-identically on any other.
//! Floats round-trip through their IEEE-754 bit patterns
//! ([`f64::to_bits`]/[`f64::from_bits`]), so NaN payloads, signed zeros, and
//! infinities survive exactly; this is what makes sketch snapshots *bitwise*
//! reproducible rather than merely approximately equal.
//!
//! Composite values are built from the primitives: sequences are a `u64`
//! length prefix followed by the elements, options are a presence byte,
//! enums are a `u32` discriminant tag (decoders reject unknown tags with
//! [`StoreError::InvalidTag`], never a panic).

use std::io::{Read, Write};

use crate::error::StoreError;

/// A value that can be written into a snapshot payload.
///
/// Implementations must be deterministic: encoding the same logical value
/// twice must produce the same bytes (canonicalize any internal state whose
/// in-memory order is unspecified, e.g. heap arrays, before writing).
pub trait Encode {
    /// Writes the binary representation of `self` to `w`.
    ///
    /// # Errors
    /// Propagates I/O failures from the sink.
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError>;
}

/// A value that can be reconstructed from a snapshot payload.
///
/// Decoders must treat the input as untrusted: malformed bytes yield a typed
/// [`StoreError`], never a panic or an unbounded allocation.
pub trait Decode: Sized {
    /// Reads one value of this type from `r`.
    ///
    /// # Errors
    /// Returns [`StoreError::Truncated`] when the input ends early and
    /// [`StoreError::InvalidTag`] / [`StoreError::InvalidValue`] for bytes
    /// that do not form a valid value.
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError>;
}

/// Reads exactly `N` bytes, mapping a short read to [`StoreError::Truncated`].
fn read_array<const N: usize>(
    r: &mut dyn Read,
    context: &'static str,
) -> Result<[u8; N], StoreError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })?;
    Ok(buf)
}

macro_rules! impl_le_primitive {
    ($($t:ty => $ctx:literal),* $(,)?) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
                w.write_all(&self.to_le_bytes())?;
                Ok(())
            }
        }
        impl Decode for $t {
            fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
                Ok(<$t>::from_le_bytes(read_array(r, $ctx)?))
            }
        }
    )*};
}

impl_le_primitive!(
    u8 => "u8",
    u16 => "u16",
    u32 => "u32",
    u64 => "u64",
    i64 => "i64",
);

impl Encode for f64 {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.to_bits().encode(w)
    }
}

impl Decode for f64 {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        u8::from(*self).encode(w)
    }
}

impl Decode for bool {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(StoreError::InvalidTag {
                what: "bool",
                tag: u32::from(tag),
            }),
        }
    }
}

impl Encode for usize {
    /// `usize` is written as `u64` so 32- and 64-bit hosts interoperate.
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        (*self as u64).encode(w)
    }
}

impl Decode for usize {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        usize::try_from(u64::decode(r)?).map_err(|_| StoreError::InvalidValue {
            what: "length does not fit in usize on this host",
        })
    }
}

impl Encode for String {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.len().encode(w)?;
        w.write_all(self.as_bytes())?;
        Ok(())
    }
}

impl Decode for String {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        let bytes: Vec<u8> = Vec::decode(r)?;
        String::from_utf8(bytes).map_err(|_| StoreError::InvalidValue {
            what: "string is not valid UTF-8",
        })
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        match self {
            None => false.encode(w),
            Some(v) => {
                true.encode(w)?;
                v.encode(w)
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        if bool::decode(r)? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.0.encode(w)?;
        self.1.encode(w)
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Ceiling on speculative `Vec` preallocation while decoding.
///
/// A corrupted length prefix must not trigger a multi-gigabyte allocation;
/// decoding reserves at most this many elements up front and then grows
/// organically (a genuinely truncated input fails on the first missing
/// element instead).
const MAX_PREALLOC: usize = 1 << 16;

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.len().encode(w)?;
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut dyn Read) -> Result<Self, StoreError> {
        let len = usize::decode(r)?;
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut dyn Write) -> Result<(), StoreError> {
        self.len().encode(w)?;
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }
}

/// Encodes a value into a fresh byte vector (payload bytes only, no
/// snapshot framing — see [`crate::SnapshotWriter`] for framed output).
///
/// # Errors
/// Propagates encoding failures (writing to a `Vec` itself cannot fail).
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Result<Vec<u8>, StoreError> {
    let mut buf = Vec::new();
    value.encode(&mut buf)?;
    Ok(buf)
}

/// Decodes a value from a byte slice, requiring every byte to be consumed.
///
/// # Errors
/// Returns [`StoreError::InvalidValue`] if trailing bytes remain after the
/// value, plus any decoding failure of the value itself.
pub fn decode_from_slice<T: Decode>(mut bytes: &[u8]) -> Result<T, StoreError> {
    let r: &mut dyn Read = &mut bytes;
    let value = T::decode(r)?;
    if bytes.is_empty() {
        Ok(value)
    } else {
        Err(StoreError::InvalidValue {
            what: "trailing bytes after value",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value).unwrap();
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(123_456usize);
        roundtrip(String::from("héllo"));
        roundtrip(Some(7.25f64));
        roundtrip(Option::<f64>::None);
        roundtrip((3u64, 2.5f64));
        roundtrip(vec![1.0f64, -0.0, f64::INFINITY]);
    }

    #[test]
    fn f64_roundtrip_is_bitwise() {
        for bits in [
            0u64,
            f64::NAN.to_bits(),
            0x7FF8_0000_0000_1234, // NaN with payload
            (-0.0f64).to_bits(),
            f64::MIN_POSITIVE.to_bits(),
        ] {
            let x = f64::from_bits(bits);
            let bytes = encode_to_vec(&x).unwrap();
            let back: f64 = decode_from_slice(&bytes).unwrap();
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn encoding_is_little_endian() {
        assert_eq!(encode_to_vec(&0x0102_0304u32).unwrap(), [4, 3, 2, 1]);
    }

    #[test]
    fn truncated_input_is_typed() {
        let bytes = encode_to_vec(&vec![1.0f64, 2.0]).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<Vec<f64>>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_length_does_not_overallocate() {
        // A length prefix of u64::MAX must fail on the first missing element,
        // not attempt the allocation.
        let bytes = encode_to_vec(&u64::MAX).unwrap();
        let err = decode_from_slice::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }));
    }

    #[test]
    fn invalid_bool_and_utf8_are_typed() {
        let err = decode_from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, StoreError::InvalidTag { what: "bool", .. }));
        let mut bytes = encode_to_vec(&String::from("ab")).unwrap();
        let last = bytes.len() - 1;
        bytes[last] = 0xFF;
        let err = decode_from_slice::<String>(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::InvalidValue { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&7u32).unwrap();
        bytes.push(0);
        let err = decode_from_slice::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::InvalidValue { .. }));
    }
}
