//! Synthetic IP-traffic-like workloads (the Section 8.2 substitution).
//!
//! The paper's max-dominance experiment (Figure 7) uses two consecutive hours
//! of destination-IP → flow-count logs from a production gateway; that data is
//! proprietary, so this module generates a synthetic stand-in with the same
//! relevant structure:
//!
//! * heavy-tailed (Zipf) per-key flow counts,
//! * a configurable fraction of keys active in both hours,
//! * hour-to-hour jitter of per-key values for the shared keys,
//! * aggregate statistics calibrated to those the paper reports
//!   (≈2.45·10⁴ active keys per hour, ≈3.8·10⁴ distinct keys over the two
//!   hours, ≈5.5·10⁵ flows per hour, Σ max ≈ 7.47·10⁵).
//!
//! The experiment measures the *variance ratio of two estimators on the same
//! samples*, which depends on the joint distribution of per-key value pairs —
//! heavy-tailed marginals plus partial overlap — not on the identity of the
//! keys, so this substitution preserves the behaviour being measured.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pie_sampling::Instance;

use crate::dataset::Dataset;
use crate::zipf::zipf_values;

/// Configuration for the two-hour traffic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of active keys in each hour.
    pub keys_per_hour: usize,
    /// Fraction of each hour's keys that are active in both hours.
    pub shared_fraction: f64,
    /// Fraction of each hour's flow volume carried by the shared (persistent)
    /// keys.  Persistent destinations are typically the heavy ones, so this is
    /// larger than `shared_fraction`.
    pub shared_volume_fraction: f64,
    /// Total flow count per hour (the sum of values in each instance).
    pub flows_per_hour: f64,
    /// Zipf exponent of the per-key flow-count distribution.
    pub zipf_exponent: f64,
    /// Relative hour-to-hour jitter of shared keys' values: hour-2 values are
    /// drawn as `value · U[1−jitter, 1+jitter]`.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl TrafficConfig {
    /// The configuration calibrated to the aggregate statistics reported in
    /// Section 8.2 of the paper: ≈24.5k keys per hour, ≈38k distinct keys,
    /// 5.5·10⁵ flows per hour, Σ max ≈ 7.47·10⁵.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            keys_per_hour: 24_500,
            shared_fraction: 0.45,        // union = (2 − 0.45)·24.5k ≈ 38k keys
            shared_volume_fraction: 0.72, // Σ max ≈ (0.72·1.1 + 0.28·2)·5.5e5 ≈ 7.45e5
            flows_per_hour: 5.5e5,
            zipf_exponent: 1.05,
            jitter: 0.4,
            seed: 0xC0FFEE,
        }
    }

    /// A smaller configuration for unit tests and quick runs.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            keys_per_hour: 2_000,
            shared_fraction: 0.45,
            shared_volume_fraction: 0.72,
            flows_per_hour: 4.5e4,
            zipf_exponent: 1.05,
            jitter: 0.4,
            seed,
        }
    }
}

/// Generates the two-hour traffic dataset described by `config`.
///
/// Instance 0 is "hour 1", instance 1 is "hour 2".
///
/// # Panics
/// Panics if the configuration is degenerate (no keys, fractions outside
/// `[0, 1]`, non-positive totals).
#[must_use]
pub fn generate_two_hours(config: &TrafficConfig) -> Dataset {
    assert!(config.keys_per_hour > 0, "need at least one key per hour");
    assert!(
        (0.0..=1.0).contains(&config.shared_fraction),
        "shared_fraction must be in [0,1]"
    );
    assert!(
        config.flows_per_hour > 0.0,
        "flows_per_hour must be positive"
    );
    assert!(
        (0.0..1.0).contains(&config.jitter),
        "jitter must be in [0,1)"
    );
    assert!(
        (0.0..=1.0).contains(&config.shared_volume_fraction),
        "shared_volume_fraction must be in [0,1]"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.keys_per_hour;
    let shared = ((n as f64) * config.shared_fraction).round() as usize;
    let only = n - shared;

    // Key layout: [0, shared) shared, [shared, n) hour-1 only,
    // [n, 2n − shared) hour-2 only.
    let shared_volume = config.flows_per_hour * config.shared_volume_fraction;
    let only_volume = config.flows_per_hour - shared_volume;

    let mut hour1 = Instance::new();
    let shared_values = if shared > 0 {
        zipf_values(shared, config.zipf_exponent, shared_volume, &mut rng)
    } else {
        Vec::new()
    };
    for (i, &v) in shared_values.iter().enumerate() {
        hour1.set(i as u64, v);
    }
    if only > 0 {
        let h1_only_values = zipf_values(only, config.zipf_exponent, only_volume, &mut rng);
        for (i, &v) in h1_only_values.iter().enumerate() {
            hour1.set((shared + i) as u64, v);
        }
    }

    // Hour 2: shared keys keep (jittered) hour-1 values, fresh keys draw new
    // heavy-tailed values; then rescale to hit the per-hour flow total.  The
    // pairs are accumulated in a deterministic order so that the rescaling is
    // reproducible bit-for-bit across runs.
    let mut hour2_pairs: Vec<(u64, f64)> = Vec::with_capacity(n);
    for (i, &v) in shared_values.iter().enumerate() {
        let factor = rng.gen_range(1.0 - config.jitter..=1.0 + config.jitter);
        hour2_pairs.push((i as u64, v * factor));
    }
    if only > 0 {
        let fresh_values = zipf_values(only, config.zipf_exponent, only_volume, &mut rng);
        for (i, &v) in fresh_values.iter().enumerate() {
            hour2_pairs.push(((n + i) as u64, v));
        }
    }
    let total: f64 = hour2_pairs.iter().map(|&(_, v)| v).sum();
    let scale = config.flows_per_hour / total;
    let hour2 = Instance::from_pairs(hour2_pairs.into_iter().map(|(k, v)| (k, v * scale)));

    Dataset::new("synthetic-two-hour-traffic", vec![hour1, hour2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::functions::maximum;

    #[test]
    fn small_config_has_expected_structure() {
        let ds = generate_two_hours(&TrafficConfig::small(7));
        assert_eq!(ds.num_instances(), 2);
        let n = 2000usize;
        let shared = 900usize; // 0.45 * 2000
        assert_eq!(ds.instances()[0].len(), n);
        assert_eq!(ds.instances()[1].len(), n);
        assert_eq!(ds.keys().len(), 2 * n - shared);
        // Totals match the configured flows per hour.
        assert!((ds.instances()[0].total() - 4.5e4).abs() < 1.0);
        assert!((ds.instances()[1].total() - 4.5e4).abs() < 1.0);
    }

    #[test]
    fn paper_scale_matches_reported_statistics() {
        let ds = generate_two_hours(&TrafficConfig::paper_scale());
        let distinct = ds.keys().len() as f64;
        assert!(
            (distinct - 3.8e4).abs() / 3.8e4 < 0.05,
            "distinct keys {distinct} should be ≈ 3.8e4"
        );
        for inst in ds.instances() {
            assert!((inst.total() - 5.5e5).abs() / 5.5e5 < 0.01);
            assert!((inst.len() as f64 - 2.45e4).abs() / 2.45e4 < 0.01);
        }
        // Σ max should land near the value the paper reports (7.47e5).
        let sum_max = ds.sum_aggregate(maximum, |_| true);
        assert!(
            (7.0e5..8.0e5).contains(&sum_max),
            "sum of maxima {sum_max} should be near 7.47e5"
        );
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let a = generate_two_hours(&TrafficConfig::small(3));
        let b = generate_two_hours(&TrafficConfig::small(3));
        assert_eq!(a, b);
        let c = generate_two_hours(&TrafficConfig::small(4));
        assert_ne!(a, c);
    }

    #[test]
    fn shared_keys_have_correlated_values() {
        let ds = generate_two_hours(&TrafficConfig::small(11));
        let (h1, h2) = (&ds.instances()[0], &ds.instances()[1]);
        // For shared keys, hour-2 values should be within the jitter band of
        // hour-1 values (up to the global rescaling factor).
        let mut checked = 0;
        for k in 0..900u64 {
            let (a, b) = (h1.value(k), h2.value(k));
            if a > 0.0 && b > 0.0 {
                let ratio = b / a;
                assert!(
                    ratio > 0.3 && ratio < 2.0,
                    "ratio {ratio} out of band for key {k}"
                );
                checked += 1;
            }
        }
        assert!(checked > 800);
    }

    #[test]
    fn values_are_heavy_tailed() {
        let ds = generate_two_hours(&TrafficConfig::small(5));
        let h1 = &ds.instances()[0];
        let max = h1.max_value();
        let mean = h1.total() / h1.len() as f64;
        assert!(max > 20.0 * mean, "max {max} should dwarf the mean {mean}");
    }

    #[test]
    #[should_panic(expected = "shared_fraction")]
    fn invalid_shared_fraction_rejected() {
        let mut cfg = TrafficConfig::small(1);
        cfg.shared_fraction = 1.5;
        let _ = generate_two_hours(&cfg);
    }
}
