//! Binary set-pair generation with controlled Jaccard coefficient
//! (the workload behind Figure 6 and the distinct-count experiments).
//!
//! Two instances of 0/1 values model two periodic logs' active-key sets; the
//! Jaccard coefficient `J = |N₁ ∩ N₂| / |N₁ ∪ N₂|` controls how much the
//! partial-information (`L`) estimator gains over HT.

use pie_sampling::Instance;

use crate::dataset::Dataset;

/// A pair of equal-size sets with a prescribed Jaccard coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetPairConfig {
    /// Size of each set, `|N₁| = |N₂| = n`.
    pub set_size: usize,
    /// Target Jaccard coefficient `J ∈ [0, 1]`.
    pub jaccard: f64,
}

impl SetPairConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `set_size == 0` or `jaccard` is outside `[0, 1]`.
    #[must_use]
    pub fn new(set_size: usize, jaccard: f64) -> Self {
        assert!(set_size > 0, "sets must be nonempty");
        assert!((0.0..=1.0).contains(&jaccard), "Jaccard must be in [0,1]");
        Self { set_size, jaccard }
    }

    /// The overlap size `|N₁ ∩ N₂|` implied by the configuration:
    /// `J = o / (2n − o)` ⇒ `o = 2nJ/(1+J)`.
    #[must_use]
    pub fn overlap(&self) -> usize {
        let n = self.set_size as f64;
        ((2.0 * n * self.jaccard) / (1.0 + self.jaccard)).round() as usize
    }

    /// The union size `|N₁ ∪ N₂| = 2n − o`.
    #[must_use]
    pub fn union_size(&self) -> usize {
        2 * self.set_size - self.overlap()
    }

    /// The realized Jaccard coefficient after rounding the overlap to an
    /// integer.
    #[must_use]
    pub fn realized_jaccard(&self) -> f64 {
        self.overlap() as f64 / self.union_size() as f64
    }
}

/// Generates the two binary instances described by `config`.
///
/// Keys `0..overlap` are shared; `overlap..n` belong only to the first set;
/// `n..2n−overlap` only to the second.  All values are 1.
#[must_use]
pub fn generate_set_pair(config: &SetPairConfig) -> Dataset {
    let n = config.set_size;
    let o = config.overlap();
    let n1 = Instance::from_pairs((0..n as u64).map(|k| (k, 1.0)));
    let n2 = Instance::from_pairs(
        (0..o as u64)
            .chain(n as u64..(2 * n - o) as u64)
            .map(|k| (k, 1.0)),
    );
    Dataset::new(
        format!("set-pair-n{}-j{:.2}", n, config.jaccard),
        vec![n1, n2],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::functions::boolean_or;

    #[test]
    fn overlap_and_union_match_jaccard() {
        let cfg = SetPairConfig::new(1000, 0.5);
        assert_eq!(cfg.overlap(), 667);
        assert_eq!(cfg.union_size(), 1333);
        assert!((cfg.realized_jaccard() - 0.5).abs() < 0.01);
    }

    #[test]
    fn extreme_jaccard_values() {
        let disjoint = SetPairConfig::new(500, 0.0);
        assert_eq!(disjoint.overlap(), 0);
        assert_eq!(disjoint.union_size(), 1000);
        let identical = SetPairConfig::new(500, 1.0);
        assert_eq!(identical.overlap(), 500);
        assert_eq!(identical.union_size(), 500);
    }

    #[test]
    fn generated_sets_have_requested_sizes() {
        for &j in &[0.0, 0.3, 0.7, 1.0] {
            let cfg = SetPairConfig::new(800, j);
            let ds = generate_set_pair(&cfg);
            assert_eq!(ds.instances()[0].len(), 800);
            assert_eq!(ds.instances()[1].len(), 800);
            assert_eq!(ds.keys().len(), cfg.union_size());
            // Distinct count = union size = sum aggregate of OR.
            let distinct = ds.sum_aggregate(boolean_or, |_| true);
            assert_eq!(distinct as usize, cfg.union_size());
        }
    }

    #[test]
    fn values_are_binary() {
        let ds = generate_set_pair(&SetPairConfig::new(100, 0.4));
        for inst in ds.instances() {
            for (_, v) in inst.iter() {
                assert_eq!(v, 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sets_rejected() {
        let _ = SetPairConfig::new(0, 0.5);
    }
}
