//! Zipf / power-law value generation.
//!
//! Request logs and traffic measurements — the data sources motivating the
//! paper — are heavy-tailed: a few keys carry most of the volume.  The figure
//! harness therefore uses Zipf-distributed values when synthesizing the
//! Section 8.2 traffic workload.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s ≥ 0`
/// (`Pr[rank = k] ∝ k^{-s}`), sampled by inversion of the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n ≥ 1` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and nonnegative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// The expected value of the rank's frequency weight `rank^{-s}`,
    /// normalized so that weights over all ranks sum to 1.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.cdf.len(), "rank out of range");
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }
}

/// Generates `count` heavy-tailed positive values with the given Zipf exponent
/// and approximate total sum.
///
/// Values are the expected per-rank shares of `total` (deterministic given the
/// parameters), shuffled into a random order.  This gives a reproducible
/// workload whose sum is exactly `total` up to rounding.
#[must_use]
pub fn zipf_values<R: Rng + ?Sized>(count: usize, s: f64, total: f64, rng: &mut R) -> Vec<f64> {
    assert!(count >= 1, "need at least one value");
    let zipf = Zipf::new(count, s);
    let mut values: Vec<f64> = (1..=count).map(|k| zipf.probability(k) * total).collect();
    // Fisher–Yates shuffle so value magnitude is not correlated with key id.
    for i in (1..values.len()).rev() {
        let j = rng.gen_range(0..=i);
        values.swap(i, j);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let z = Zipf::new(100, 1.0);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn samples_cover_range_and_favour_small_ranks() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut count_rank1 = 0;
        let mut count_tail = 0;
        let trials = 50_000;
        for _ in 0..trials {
            let r = z.sample(&mut rng);
            assert!((1..=1000).contains(&r));
            if r == 1 {
                count_rank1 += 1;
            }
            if r > 500 {
                count_tail += 1;
            }
        }
        assert!(
            count_rank1 > count_tail,
            "rank 1 should dominate the tail half"
        );
        let expected_rank1 = z.probability(1) * trials as f64;
        assert!((count_rank1 as f64 - expected_rank1).abs() < 0.1 * expected_rank1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (1..=50).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_exponent_gives_uniform_probabilities() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_values_sum_to_total() {
        let mut rng = StdRng::seed_from_u64(2);
        let values = zipf_values(1000, 1.0, 5.5e5, &mut rng);
        assert_eq!(values.len(), 1000);
        let sum: f64 = values.iter().sum();
        assert!((sum - 5.5e5).abs() < 1.0);
        assert!(values.iter().all(|&v| v > 0.0));
        // Heavy tail: the largest value should be a substantial share of the total.
        let max = values.iter().copied().fold(0.0, f64::max);
        assert!(max > 0.05 * sum);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
