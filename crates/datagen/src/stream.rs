//! Stream adapters: expose datasets as sharded record streams.
//!
//! The streaming sampling API (`pie-sampling`'s `SamplingScheme` /
//! `Sketch`) consumes records `(key, weight)` one at a time, partitioned by
//! key across shards.  This module adapts the in-memory [`Dataset`] model to
//! that regime: [`dataset_records`] flattens a dataset into a deterministic
//! record stream (instance-major, key-ascending), and [`ShardedStream`]
//! pre-partitions the records per `(instance, shard)` the way a keyed log
//! partitioner would, so ingest loops and benches can replay them without
//! touching the dataset again.
//!
//! Sharding is by key hash ([`shard_of`]), which keeps every key's records
//! in one shard — the contract the mergeable sketches require — while
//! spreading heavy-tailed key populations evenly.

use pie_sampling::hash::mix64;
use pie_sampling::Key;

use crate::dataset::Dataset;

/// One record of a traffic stream: `key` contributed `value` in `instance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRecord {
    /// Index of the instance (e.g. the hour) this record belongs to.
    pub instance: u64,
    /// The record's key.
    pub key: Key,
    /// The record's (pre-aggregated) weight.
    pub value: f64,
}

/// The shard a key's records are routed to, out of `shards`.
///
/// Uses the avalanching [`mix64`] so that sequential key spaces (as the
/// synthetic generators produce) still spread evenly.
///
/// # Panics
/// Panics if `shards == 0`.
#[must_use]
pub fn shard_of(key: Key, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    (mix64(key) % shards as u64) as usize
}

/// Flattens a dataset into its record stream in deterministic order:
/// instance-major, keys ascending within each instance.
///
/// Only explicitly stored entries are emitted (weighted schemes never sample
/// absent keys); use [`ShardedStream::over_universe`] when zero-valued
/// universe keys must participate (weight-oblivious sampling).
pub fn dataset_records(dataset: &Dataset) -> impl Iterator<Item = StreamRecord> + '_ {
    dataset
        .instances()
        .iter()
        .enumerate()
        .flat_map(|(i, inst)| {
            inst.sorted_keys().into_iter().map(move |key| StreamRecord {
                instance: i as u64,
                key,
                value: inst.value(key),
            })
        })
}

/// A dataset's record stream, pre-partitioned per `(instance, shard)`.
///
/// Each part holds its records key-ascending, so replaying a part is
/// deterministic; the concatenation of all parts of one instance is a
/// key-partition of that instance's logical stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedStream {
    shards: usize,
    /// `parts[instance][shard]` — records routed to that shard.
    parts: Vec<Vec<Vec<(Key, f64)>>>,
}

impl ShardedStream {
    /// Partitions the dataset's explicit records into `shards` shards per
    /// instance.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn from_dataset(dataset: &Dataset, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut parts: Vec<Vec<Vec<(Key, f64)>>> = dataset
            .instances()
            .iter()
            .map(|_| vec![Vec::new(); shards])
            .collect();
        for record in dataset_records(dataset) {
            parts[record.instance as usize][shard_of(record.key, shards)]
                .push((record.key, record.value));
        }
        Self { shards, parts }
    }

    /// Partitions the dataset over its full key universe: every union key is
    /// emitted into **every** instance's stream, with weight 0 where the
    /// instance has no value — the stream weight-oblivious sampling needs.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn over_universe(dataset: &Dataset, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let universe = dataset.keys();
        let parts = dataset
            .instances()
            .iter()
            .map(|inst| {
                let mut per_shard = vec![Vec::new(); shards];
                for &key in &universe {
                    per_shard[shard_of(key, shards)].push((key, inst.value(key)));
                }
                per_shard
            })
            .collect();
        Self { shards, parts }
    }

    /// Number of shards per instance.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of instances.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.parts.len()
    }

    /// The records routed to `(instance, shard)`, key-ascending.
    #[must_use]
    pub fn part(&self, instance: usize, shard: usize) -> &[(Key, f64)] {
        &self.parts[instance][shard]
    }

    /// Total number of records across all instances and shards.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.parts
            .iter()
            .map(|inst| inst.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::paper_example;

    #[test]
    fn records_are_instance_major_and_key_sorted() {
        let ds = paper_example();
        let recs: Vec<StreamRecord> = dataset_records(&ds).collect();
        assert_eq!(recs.len(), 18, "3 instances × 6 keys");
        for pair in recs.windows(2) {
            assert!(
                pair[0].instance < pair[1].instance
                    || (pair[0].instance == pair[1].instance && pair[0].key < pair[1].key),
                "order violated: {pair:?}"
            );
        }
        assert_eq!(recs[0].value, ds.instances()[0].value(recs[0].key));
    }

    #[test]
    fn sharding_partitions_each_instance_exactly() {
        let ds = paper_example();
        for shards in [1, 2, 3, 5] {
            let stream = ShardedStream::from_dataset(&ds, shards);
            assert_eq!(stream.shards(), shards);
            assert_eq!(stream.num_instances(), 3);
            assert_eq!(stream.num_records(), 18);
            for i in 0..3 {
                let mut keys: Vec<Key> = (0..shards)
                    .flat_map(|s| stream.part(i, s).iter().map(|&(k, _)| k))
                    .collect();
                keys.sort_unstable();
                assert_eq!(keys, ds.instances()[i].sorted_keys());
            }
        }
    }

    #[test]
    fn shard_routing_is_consistent_and_total() {
        for key in 0..1000u64 {
            let s = shard_of(key, 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(key, 7), "routing must be deterministic");
        }
        // All shards receive traffic from a modest sequential key space.
        let hit: std::collections::HashSet<usize> = (0..1000u64).map(|k| shard_of(k, 8)).collect();
        assert_eq!(hit.len(), 8);
    }

    #[test]
    fn universe_stream_contains_zero_valued_keys() {
        let ds = paper_example();
        let stream = ShardedStream::over_universe(&ds, 2);
        // Key 2 has value 0 in instance 0 but must still appear in its stream.
        let part = stream.part(0, shard_of(2, 2));
        assert!(part.iter().any(|&(k, v)| k == 2 && v == 0.0));
        // Every instance's stream covers the full 6-key universe.
        assert_eq!(stream.num_records(), 18);
    }
}
