//! The instances × keys dataset model and the paper's worked example.
//!
//! A [`Dataset`] is an ordered collection of [`Instance`]s over a shared key
//! universe — the matrix view of Figure 5 (A).  It is the unit the evaluation
//! harness and the figure binaries operate on.

use pie_sampling::{key_union, value_vector, Instance, Key};

/// A named collection of instances over a shared key universe.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    instances: Vec<Instance>,
}

impl Dataset {
    /// Creates a dataset from instances.
    ///
    /// # Panics
    /// Panics if no instances are supplied.
    #[must_use]
    pub fn new(name: impl Into<String>, instances: Vec<Instance>) -> Self {
        assert!(
            !instances.is_empty(),
            "a dataset needs at least one instance"
        );
        Self {
            name: name.into(),
            instances,
        }
    }

    /// The dataset's name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instances, in order.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances (`r`).
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// The union of all keys, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<Key> {
        key_union(&self.instances)
    }

    /// The value vector of one key across all instances.
    #[must_use]
    pub fn value_vector(&self, key: Key) -> Vec<f64> {
        value_vector(&self.instances, key)
    }

    /// The exact sum aggregate `Σ_{h ∈ K', select(h)} f(v(h))`.
    #[must_use]
    pub fn sum_aggregate<F, S>(&self, f: F, select: S) -> f64
    where
        F: Fn(&[f64]) -> f64,
        S: Fn(Key) -> bool,
    {
        self.keys()
            .into_iter()
            .filter(|&k| select(k))
            .map(|k| f(&self.value_vector(k)))
            .sum()
    }

    /// Restricts the dataset to its first `r` instances.
    ///
    /// # Panics
    /// Panics if `r` is zero or exceeds the number of instances.
    #[must_use]
    pub fn take_instances(&self, r: usize) -> Self {
        assert!(
            r >= 1 && r <= self.instances.len(),
            "invalid instance count {r}"
        );
        Self {
            name: format!("{}[..{}]", self.name, r),
            instances: self.instances[..r].to_vec(),
        }
    }
}

impl pie_store::Encode for Dataset {
    /// Instances are written in order; each instance's entries are written
    /// in ascending key order, so the encoding is canonical.
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), pie_store::StoreError> {
        self.name.encode(w)?;
        self.instances.encode(w)
    }
}

impl pie_store::Decode for Dataset {
    /// Decoding treats the input as untrusted: the per-instance invariants
    /// are validated by [`Instance`]'s decoder, and an instance-less dataset
    /// (which [`Dataset::new`] rejects by panicking) surfaces as a typed
    /// error instead.
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, pie_store::StoreError> {
        let name = String::decode(r)?;
        let instances: Vec<Instance> = Vec::decode(r)?;
        if instances.is_empty() {
            return Err(pie_store::StoreError::InvalidValue {
                what: "a Dataset needs at least one instance",
            });
        }
        Ok(Self { name, instances })
    }
}

/// The 3-instance × 6-key example data set of Figure 5 (A).
///
/// Keys are numbered 1–6 exactly as in the paper.
#[must_use]
pub fn paper_example() -> Dataset {
    let i1 = Instance::from_pairs([
        (1, 15.0),
        (2, 0.0),
        (3, 10.0),
        (4, 5.0),
        (5, 10.0),
        (6, 10.0),
    ]);
    let i2 = Instance::from_pairs([
        (1, 20.0),
        (2, 10.0),
        (3, 12.0),
        (4, 20.0),
        (5, 0.0),
        (6, 10.0),
    ]);
    let i3 = Instance::from_pairs([
        (1, 10.0),
        (2, 15.0),
        (3, 15.0),
        (4, 0.0),
        (5, 15.0),
        (6, 10.0),
    ]);
    Dataset::new("figure5-example", vec![i1, i2, i3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pie_core::functions::{maximum, minimum, range};

    #[test]
    fn paper_example_matches_figure5_aggregates() {
        let ds = paper_example();
        assert_eq!(ds.num_instances(), 3);
        assert_eq!(ds.keys(), vec![1, 2, 3, 4, 5, 6]);
        // Figure 5 (A): max over instances {1,2} per key.
        let two = ds.take_instances(2);
        let max12: Vec<f64> = two
            .keys()
            .iter()
            .map(|&k| maximum(&two.value_vector(k)))
            .collect();
        assert_eq!(max12, vec![20.0, 10.0, 12.0, 20.0, 10.0, 10.0]);
        // min over instances {1,2}.  (The figure prints 0 for key 4, but the
        // data in the same figure gives min(5, 20) = 5; we follow the data.)
        let min12: Vec<f64> = two
            .keys()
            .iter()
            .map(|&k| minimum(&two.value_vector(k)))
            .collect();
        assert_eq!(min12, vec![15.0, 0.0, 10.0, 5.0, 0.0, 10.0]);
        // RG over the three instances.
        let rg: Vec<f64> = ds
            .keys()
            .iter()
            .map(|&k| range(&ds.value_vector(k)))
            .collect();
        assert_eq!(rg, vec![10.0, 15.0, 5.0, 20.0, 15.0, 0.0]);
    }

    #[test]
    fn paper_example_sum_aggregates() {
        let ds = paper_example();
        let two = ds.take_instances(2);
        // Max-dominance over even keys and instances {1,2} is 40 (Section 7).
        assert_eq!(two.sum_aggregate(maximum, |k| k % 2 == 0), 40.0);
        // L1 distance between instances {2,3} over keys {1,2,3} is 18.
        let i23 = Dataset::new("23", ds.instances()[1..3].to_vec());
        assert_eq!(i23.sum_aggregate(range, |k| k <= 3), 18.0);
    }

    #[test]
    fn value_vectors_have_one_entry_per_instance() {
        let ds = paper_example();
        assert_eq!(ds.value_vector(4), vec![5.0, 20.0, 0.0]);
        assert_eq!(ds.value_vector(999), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn take_instances_restricts() {
        let ds = paper_example();
        let one = ds.take_instances(1);
        assert_eq!(one.num_instances(), 1);
        assert_eq!(one.value_vector(1), vec![15.0]);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_dataset_rejected() {
        let _ = Dataset::new("empty", vec![]);
    }

    #[test]
    fn codec_roundtrips_canonically() {
        let ds = paper_example();
        let bytes = pie_store::encode_to_vec(&ds).unwrap();
        let back: Dataset = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.name(), "figure5-example");
        assert_eq!(pie_store::encode_to_vec(&back).unwrap(), bytes);
    }

    #[test]
    fn decode_rejects_empty_dataset() {
        // name ‖ zero-length instance vector: Dataset::new would panic on
        // this shape, so the decoder must reject it as a typed error.
        let mut bytes = pie_store::encode_to_vec(&String::from("empty")).unwrap();
        bytes.extend_from_slice(&pie_store::encode_to_vec(&0u64).unwrap());
        assert!(matches!(
            pie_store::decode_from_slice::<Dataset>(&bytes).unwrap_err(),
            pie_store::StoreError::InvalidValue { .. }
        ));
    }
}
