//! # pie-datagen — synthetic workloads for partial-information estimation
//!
//! Workload generators used by the examples, the test-suite, and the figure
//! harness:
//!
//! * [`dataset`] — the instances × keys matrix model and the paper's Figure 5
//!   worked example;
//! * [`zipf`] — heavy-tailed value generation;
//! * [`traffic`] — the synthetic stand-in for the paper's proprietary two-hour
//!   IP-traffic logs (Section 8.2 / Figure 7);
//! * [`sets`] — binary set pairs with a controlled Jaccard coefficient
//!   (Section 8.1 / Figure 6);
//! * [`stream`] — adapters that expose a dataset as a sharded record stream
//!   for the streaming `SamplingScheme` ingest path.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod sets;
pub mod stream;
pub mod traffic;
pub mod zipf;

pub use dataset::{paper_example, Dataset};
pub use sets::{generate_set_pair, SetPairConfig};
pub use stream::{dataset_records, shard_of, ShardedStream, StreamRecord};
pub use traffic::{generate_two_hours, TrafficConfig};
pub use zipf::{zipf_values, Zipf};
