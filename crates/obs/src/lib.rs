//! Observability plane for the serving stack: exact metrics and request
//! tracing, both built for the repo's determinism discipline.
//!
//! The serving layers (`pie-serve`'s multiplexed event loop, `pie-engine`'s
//! cache and admission control, `pie-cluster`'s router) attribute where
//! requests spend their time the same way the paper attributes estimator
//! quality to its HT/L/U stages: by decomposing one aggregate into exactly
//! accounted parts.  This crate provides the two substrates:
//!
//! * **Metrics** ([`metrics`]) — a lock-sharded [`MetricsRegistry`] of
//!   exact [`Counter`]s, [`Gauge`]s, and log-bucketed (HDR-style, ~2
//!   buckets per octave over 1µs–60s) latency [`Histogram`]s.  Recording
//!   is lock-free (atomic handles), snapshots are canonical (sorted by
//!   name), and [`MetricsSnapshot::absorb`] merges snapshots from N
//!   processes **bit-deterministically** — all state is integer, so a
//!   merged fleet snapshot equals the single-registry result exactly,
//!   mirroring `EngineStatsReport::absorb` and `RunningStats::merge`.
//! * **Tracing** ([`trace`]) — a [`TraceContext`] small enough to ride an
//!   optional wire-frame extension, per-stage [`SpanRecord`]s collected in
//!   a bounded in-memory [`TraceRing`], and a [`SlowQueryLog`] that keeps
//!   the most recent requests slower than a configurable threshold.
//!
//! The crate is pure `std` and depends only on `pie-store` (for the
//! canonical binary codec, so snapshots and spans can cross the wire).
//!
//! ```
//! use pie_obs::{MetricsRegistry, MetricsSnapshot};
//!
//! let registry = MetricsRegistry::new();
//! let served = registry.counter("requests_total");
//! let latency = registry.histogram("request_nanos");
//! served.inc();
//! latency.record(12_345); // nanoseconds
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("requests_total"), Some(1));
//! println!("{}", snapshot.render_text());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, BUCKET_BOUNDS_NANOS, HISTOGRAM_BUCKETS,
};
pub use trace::{SlowQueryLog, SlowQueryRecord, SpanRecord, TraceContext, TraceRing};
