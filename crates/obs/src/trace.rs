//! Request tracing: wire-propagatable trace identifiers, per-stage span
//! records, a bounded ring of recent spans, and a slow-query log.
//!
//! A [`TraceContext`] is 16 bytes — small enough to ride the optional
//! `PIEW` frame extension — and names one request (`trace_id`) plus the
//! caller's span (`span_id`), so a hop that fans out (client → router →
//! node) can parent its own spans under the caller's.  Each serving layer
//! records [`SpanRecord`]s into its local [`TraceRing`]; a `QueryTrace`
//! wire request collects every ring's spans for one `trace_id`, and the
//! cluster router merges its own spans with the owning node's under the
//! same trace.

use std::collections::VecDeque;
use std::sync::Mutex;

use pie_store::{Decode, Encode, StoreError};

/// The identity a traced request carries across hops: which request
/// (`trace_id`) and which span of the caller is the parent (`span_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies one end-to-end request across every hop.
    pub trace_id: u64,
    /// The caller's span: spans recorded while serving this hop use it as
    /// their parent.
    pub span_id: u64,
}

impl TraceContext {
    /// A context for request `trace_id` whose caller span is `span_id`.
    #[must_use]
    pub fn new(trace_id: u64, span_id: u64) -> Self {
        Self { trace_id, span_id }
    }
}

impl Encode for TraceContext {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.trace_id.encode(w)?;
        self.span_id.encode(w)
    }
}

impl Decode for TraceContext {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        Ok(Self {
            trace_id: u64::decode(r)?,
            span_id: u64::decode(r)?,
        })
    }
}

/// One timed stage of one traced request on one node.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The request this span belongs to.
    pub trace_id: u64,
    /// This span's own identifier (unique within its node).
    pub span_id: u64,
    /// The span this one nests under (the wire-carried caller span for
    /// top-level server spans; 0 for roots).
    pub parent_span_id: u64,
    /// Which process recorded the span (a node name or listen address).
    pub node: String,
    /// The pipeline stage the span times (`decode`, `admission`,
    /// `cache_probe`, `trial_replay`, `estimator_batch`, `encode`,
    /// `write_queue`, …).
    pub stage: String,
    /// Start time in nanoseconds on the recording node's monotonic clock
    /// (relative to that node's start; comparable within a node only).
    pub start_nanos: u64,
    /// The stage's duration in nanoseconds.
    pub duration_nanos: u64,
}

impl Encode for SpanRecord {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.trace_id.encode(w)?;
        self.span_id.encode(w)?;
        self.parent_span_id.encode(w)?;
        self.node.encode(w)?;
        self.stage.encode(w)?;
        self.start_nanos.encode(w)?;
        self.duration_nanos.encode(w)
    }
}

impl Decode for SpanRecord {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        Ok(Self {
            trace_id: u64::decode(r)?,
            span_id: u64::decode(r)?,
            parent_span_id: u64::decode(r)?,
            node: String::decode(r)?,
            stage: String::decode(r)?,
            start_nanos: u64::decode(r)?,
            duration_nanos: u64::decode(r)?,
        })
    }
}

/// A bounded in-memory ring of the most recent spans: recording never
/// allocates beyond the fixed capacity, and old spans are dropped oldest
/// first.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
}

impl TraceRing {
    /// A ring keeping at most `capacity` spans (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            spans: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The ring's span capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one span, evicting the oldest if the ring is full.
    pub fn record(&self, span: SpanRecord) {
        let mut guard = self.spans.lock().expect("trace ring poisoned");
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(span);
    }

    /// Every retained span of `trace_id`, oldest first.
    #[must_use]
    pub fn query(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace ring poisoned").len()
    }

    /// Whether no spans are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One request that exceeded the slow-query threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// The request's trace id (0 when the request carried no trace).
    pub trace_id: u64,
    /// The request type (`Estimate`, `BatchEstimate`, …).
    pub request: String,
    /// The sketch the request addressed, when it addressed one.
    pub sketch: String,
    /// End-to-end service duration in nanoseconds.
    pub duration_nanos: u64,
}

/// A bounded log of the most recent requests slower than a configurable
/// threshold.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    threshold_nanos: u64,
    entries: Mutex<VecDeque<SlowQueryRecord>>,
}

impl SlowQueryLog {
    /// A log keeping at most `capacity` records (clamped to ≥ 1) of
    /// requests that took longer than `threshold_nanos`.
    #[must_use]
    pub fn new(capacity: usize, threshold_nanos: u64) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            threshold_nanos,
            entries: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The configured threshold in nanoseconds.
    #[must_use]
    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// Logs `record` iff its duration exceeds the threshold; returns
    /// whether it was logged.
    pub fn observe(&self, record: SlowQueryRecord) -> bool {
        if record.duration_nanos <= self.threshold_nanos {
            return false;
        }
        let mut guard = self.entries.lock().expect("slow-query log poisoned");
        if guard.len() == self.capacity {
            guard.pop_front();
        }
        guard.push_back(record);
        true
    }

    /// Every retained record, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<SlowQueryRecord> {
        self.entries
            .lock()
            .expect("slow-query log poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, span_id: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_span_id: 0,
            node: "node-0".to_string(),
            stage: "decode".to_string(),
            start_nanos: 10,
            duration_nanos: 5,
        }
    }

    #[test]
    fn ring_is_bounded_and_queries_by_trace() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record(span(i % 2, i));
        }
        assert_eq!(ring.len(), 3); // spans 2, 3, 4 retained
        let zeros = ring.query(0);
        assert_eq!(
            zeros.iter().map(|s| s.span_id).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert!(ring.query(9).is_empty());
    }

    #[test]
    fn trace_context_and_span_roundtrip() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF,
            span_id: 7,
        };
        let bytes = pie_store::encode_to_vec(&ctx).unwrap();
        assert_eq!(bytes.len(), 16);
        let back: TraceContext = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, ctx);

        let s = span(1, 2);
        let bytes = pie_store::encode_to_vec(&s).unwrap();
        let back: SpanRecord = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn slow_log_filters_by_threshold_and_is_bounded() {
        let log = SlowQueryLog::new(2, 100);
        let record = |id: u64, nanos: u64| SlowQueryRecord {
            trace_id: id,
            request: "Estimate".to_string(),
            sketch: "s".to_string(),
            duration_nanos: nanos,
        };
        assert!(!log.observe(record(1, 100))); // at threshold: not slow
        assert!(log.observe(record(2, 101)));
        assert!(log.observe(record(3, 500)));
        assert!(log.observe(record(4, 500)));
        let kept: Vec<u64> = log.entries().iter().map(|r| r.trace_id).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(log.threshold_nanos(), 100);
    }
}
