//! The metrics substrate: exact counters, gauges, and log-bucketed latency
//! histograms behind a lock-sharded registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed out at
//! registration time; recording through a handle touches only atomics, so
//! hot paths (the event loop, workers, estimator replay) never take a lock.
//! The registry's locks guard only name → handle resolution, and are
//! sharded by name hash so unrelated subsystems never contend.
//!
//! Everything is integer state, which is what makes
//! [`MetricsSnapshot::absorb`] a *bit-deterministic* merge: summing bucket
//! counts and nanosecond totals is associative and commutative over `u64`,
//! so a fleet snapshot absorbed in any node order equals the snapshot one
//! registry would have produced recording every event itself.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use pie_store::{Decode, Encode, StoreError};

/// Inclusive upper bounds (in nanoseconds) of the histogram's finite
/// buckets: ~2 buckets per octave (the half-octave bound is `×181/128`,
/// an integer approximation of `√2`) from 1µs up through the first bound
/// past 60s.  One overflow bucket above the last bound completes the
/// layout; values at or below 1µs land in the first bucket.
pub const BUCKET_BOUNDS_NANOS: [u64; 53] = bucket_bounds();

/// Total bucket count: every finite bound plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = BUCKET_BOUNDS_NANOS.len() + 1;

const fn bucket_bounds() -> [u64; 53] {
    let mut out = [0u64; 53];
    let mut k = 0;
    while k < out.len() {
        let octave = 1000u64 << (k / 2);
        out[k] = if k % 2 == 0 {
            octave
        } else {
            octave * 181 / 128
        };
        k += 1;
    }
    out
}

/// Sentinel stored in a histogram's `min` register while it is empty.
const EMPTY_MIN: u64 = u64::MAX;

/// An exact, monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, high-water mark, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the level to `v` if it is higher than the current value —
    /// the high-water-mark recording primitive.
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` (for gauges tracking a live count).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero on concurrent underflow.
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under contention; gauges are low-rate.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram over nanosecond durations; see
/// [`BUCKET_BOUNDS_NANOS`] for the bucket layout.  All state is integer
/// (bucket counts, exact nanosecond sum, min, max), so merged snapshots
/// are bit-deterministic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(EMPTY_MIN),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `nanos` nanoseconds.  Lock-free: five
    /// relaxed atomic updates.
    pub fn record(&self, nanos: u64) {
        let index = BUCKET_BOUNDS_NANOS.partition_point(|&bound| bound < nanos);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records a [`Duration`] (saturating at `u64::MAX` nanoseconds).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            min_nanos: self.min_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// One registered metric: the registry's name → handle table entry.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Number of independent registration-lock shards.
const LOCK_SHARDS: usize = 8;

/// The lock-sharded metric registry; see the [module docs](self).
pub struct MetricsRegistry {
    shards: Vec<RwLock<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..LOCK_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Metric>> {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % LOCK_SHARDS as u64) as usize]
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// registration names are a process-internal namespace, so a kind
    /// collision is a programming error, not input.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let lock = self.shard(name);
        if let Some(Metric::Counter(c)) = lock.read().expect("metrics lock poisoned").get(name) {
            return Arc::clone(c);
        }
        let mut guard = lock.write().expect("metrics lock poisoned");
        match guard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    /// On a metric-kind collision, as [`counter`](Self::counter).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let lock = self.shard(name);
        if let Some(Metric::Gauge(g)) = lock.read().expect("metrics lock poisoned").get(name) {
            return Arc::clone(g);
        }
        let mut guard = lock.write().expect("metrics lock poisoned");
        match guard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    /// On a metric-kind collision, as [`counter`](Self::counter).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let lock = self.shard(name);
        if let Some(Metric::Histogram(h)) = lock.read().expect("metrics lock poisoned").get(name) {
            return Arc::clone(h);
        }
        let mut guard = lock.write().expect("metrics lock poisoned");
        match guard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    }

    /// A canonical (sorted-by-name) snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        for shard in &self.shards {
            let guard = shard.read().expect("metrics lock poisoned");
            for (name, metric) in guard.iter() {
                match metric {
                    Metric::Counter(c) => snapshot.counters.push(CounterSnapshot {
                        name: name.clone(),
                        value: c.get(),
                    }),
                    Metric::Gauge(g) => snapshot.gauges.push(GaugeSnapshot {
                        name: name.clone(),
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => snapshot.histograms.push(h.snapshot(name)),
                }
            }
        }
        snapshot.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot
    }

    /// Shorthand for `self.snapshot().render_text()`.
    #[must_use]
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// One counter's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// The registered name.
    pub name: String,
    /// The exact total at snapshot time.
    pub value: u64,
}

/// One gauge's point-in-time level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The registered name.
    pub name: String,
    /// The level at snapshot time.
    pub value: u64,
}

/// One histogram's point-in-time state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The registered name.
    pub name: String,
    /// Exact number of observations.
    pub count: u64,
    /// Exact sum of all observed nanoseconds.
    pub sum_nanos: u64,
    /// Smallest observation (`u64::MAX` while empty).
    pub min_nanos: u64,
    /// Largest observation (0 while empty).
    pub max_nanos: u64,
    /// One count per bucket of [`BUCKET_BOUNDS_NANOS`] plus the overflow
    /// bucket; always [`HISTOGRAM_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram under `name` (the merge identity).
    #[must_use]
    pub fn empty(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            count: 0,
            sum_nanos: 0,
            min_nanos: EMPTY_MIN,
            max_nanos: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// Mean observation in nanoseconds (0 while empty).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }

    fn absorb(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

/// A full registry snapshot: every metric, sorted by name within each
/// kind.  Canonical, wire-encodable, and exactly mergeable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauge levels, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge named `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Merges `other` into `self`, exactly: counters and histograms sum
    /// (bucket-wise, with exact min/max combination), gauges keep the
    /// maximum level (the fleet-wide high-water interpretation).  Metrics
    /// are matched by name; names unique to either side survive.  All
    /// state is integer, so the merge is associative, commutative, and
    /// **bit-deterministic**: any absorb order over N node snapshots
    /// yields the identical result — the fleet-level mirror of
    /// `EngineStatsReport::absorb` / `RunningStats::merge`.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => mine.value = mine.value.max(g.value),
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.absorb(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Prometheus-style text exposition.  One deviation from the
    /// convention: durations are exposed in integer **nanoseconds** (the
    /// histograms' native, exactly-mergeable unit), so `le` labels and
    /// `_sum` lines are nanosecond values.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            let _ = writeln!(out, "{} {}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", g.name);
            let _ = writeln!(out, "{} {}", g.name, g.value);
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cumulative = 0u64;
            for (bucket, bound) in h.buckets.iter().zip(BUCKET_BOUNDS_NANOS.iter()) {
                cumulative += bucket;
                let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", h.name);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum_nanos);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        out
    }
}

impl Encode for CounterSnapshot {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.name.encode(w)?;
        self.value.encode(w)
    }
}

impl Decode for CounterSnapshot {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        Ok(Self {
            name: String::decode(r)?,
            value: u64::decode(r)?,
        })
    }
}

impl Encode for GaugeSnapshot {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.name.encode(w)?;
        self.value.encode(w)
    }
}

impl Decode for GaugeSnapshot {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        Ok(Self {
            name: String::decode(r)?,
            value: u64::decode(r)?,
        })
    }
}

impl Encode for HistogramSnapshot {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.name.encode(w)?;
        self.count.encode(w)?;
        self.sum_nanos.encode(w)?;
        self.min_nanos.encode(w)?;
        self.max_nanos.encode(w)?;
        self.buckets.encode(w)
    }
}

impl Decode for HistogramSnapshot {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        let snapshot = Self {
            name: String::decode(r)?,
            count: u64::decode(r)?,
            sum_nanos: u64::decode(r)?,
            min_nanos: u64::decode(r)?,
            max_nanos: u64::decode(r)?,
            buckets: Vec::decode(r)?,
        };
        if snapshot.buckets.len() != HISTOGRAM_BUCKETS {
            return Err(StoreError::InvalidValue {
                what: "histogram snapshot must hold exactly one count per bucket",
            });
        }
        let total: Option<u64> = snapshot
            .buckets
            .iter()
            .try_fold(0u64, |acc, &b| acc.checked_add(b));
        if total != Some(snapshot.count) {
            return Err(StoreError::InvalidValue {
                what: "histogram bucket counts must sum to the observation count",
            });
        }
        Ok(snapshot)
    }
}

impl Encode for MetricsSnapshot {
    fn encode(&self, w: &mut dyn std::io::Write) -> Result<(), StoreError> {
        self.counters.encode(w)?;
        self.gauges.encode(w)?;
        self.histograms.encode(w)
    }
}

impl Decode for MetricsSnapshot {
    fn decode(r: &mut dyn std::io::Read) -> Result<Self, StoreError> {
        Ok(Self {
            counters: Vec::decode(r)?,
            gauges: Vec::decode(r)?,
            histograms: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_spans_one_microsecond_to_past_a_minute() {
        assert_eq!(BUCKET_BOUNDS_NANOS[0], 1_000);
        assert_eq!(BUCKET_BOUNDS_NANOS[1], 1_000 * 181 / 128);
        // ~2 buckets per octave: every even step doubles the previous even.
        for k in (2..BUCKET_BOUNDS_NANOS.len()).step_by(2) {
            assert_eq!(BUCKET_BOUNDS_NANOS[k], 2 * BUCKET_BOUNDS_NANOS[k - 2]);
        }
        // Bounds are strictly increasing and the last crosses 60 seconds.
        for pair in BUCKET_BOUNDS_NANOS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        let last = BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1];
        assert!(last >= 60_000_000_000);
        assert!(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 2] < 60_000_000_000);
    }

    #[test]
    fn histogram_records_exactly_and_bounds_are_inclusive() {
        let h = Histogram::default();
        h.record(0);
        h.record(1_000); // exactly the first bound: first bucket
        h.record(1_001); // just past it: second bucket
        h.record(u64::MAX); // overflow bucket
        let s = h.snapshot("t");
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.min_nanos, 0);
        assert_eq!(s.max_nanos, u64::MAX);
    }

    #[test]
    fn sharded_recording_merges_bit_identically_to_one_registry() {
        // The same observation stream recorded (a) into one registry and
        // (b) split across three registries then absorbed in every order
        // must produce byte-identical snapshots.
        let observations: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let single = MetricsRegistry::new();
        let nodes: Vec<MetricsRegistry> = (0..3).map(|_| MetricsRegistry::new()).collect();
        for (i, &nanos) in observations.iter().enumerate() {
            single.histogram("lat").record(nanos);
            single.counter("ops").inc();
            nodes[i % 3].histogram("lat").record(nanos);
            nodes[i % 3].counter("ops").inc();
        }
        let want = pie_store::encode_to_vec(&single.snapshot()).unwrap();
        let parts: Vec<MetricsSnapshot> = nodes.iter().map(MetricsRegistry::snapshot).collect();
        for order in [[0, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]] {
            let mut merged = MetricsSnapshot::default();
            for &i in &order {
                merged.absorb(&parts[i]);
            }
            let got = pie_store::encode_to_vec(&merged).unwrap();
            assert_eq!(got, want, "absorb order {order:?}");
        }
    }

    #[test]
    fn absorb_keeps_disjoint_names_and_maxes_gauges() {
        let a = MetricsRegistry::new();
        a.counter("only_a").add(3);
        a.gauge("depth").set(7);
        let b = MetricsRegistry::new();
        b.counter("only_b").add(5);
        b.gauge("depth").set(9);
        let mut merged = a.snapshot();
        merged.absorb(&b.snapshot());
        assert_eq!(merged.counter("only_a"), Some(3));
        assert_eq!(merged.counter("only_b"), Some(5));
        assert_eq!(merged.gauge("depth"), Some(9));
        // Merging an empty snapshot is the identity, bitwise.
        let before = pie_store::encode_to_vec(&merged).unwrap();
        merged.absorb(&MetricsSnapshot::default());
        assert_eq!(pie_store::encode_to_vec(&merged).unwrap(), before);
    }

    #[test]
    fn snapshot_roundtrips_and_decode_validates_shape() {
        let r = MetricsRegistry::new();
        r.counter("c").add(2);
        r.gauge("g").set(4);
        r.histogram("h").record(1_000_000);
        let snapshot = r.snapshot();
        let bytes = pie_store::encode_to_vec(&snapshot).unwrap();
        let back: MetricsSnapshot = pie_store::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, snapshot);

        let mut wrong_shape = snapshot.clone();
        wrong_shape.histograms[0].buckets.pop();
        let bytes = pie_store::encode_to_vec(&wrong_shape).unwrap();
        assert!(matches!(
            pie_store::decode_from_slice::<MetricsSnapshot>(&bytes).unwrap_err(),
            StoreError::InvalidValue { .. }
        ));

        let mut wrong_count = snapshot;
        wrong_count.histograms[0].count += 1;
        let bytes = pie_store::encode_to_vec(&wrong_count).unwrap();
        assert!(matches!(
            pie_store::decode_from_slice::<MetricsSnapshot>(&bytes).unwrap_err(),
            StoreError::InvalidValue { .. }
        ));
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let r = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let ops = r.counter("ops");
                let lat = r.histogram("lat");
                scope.spawn(move || {
                    for i in 0..per_thread {
                        ops.inc();
                        lat.record(i);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("ops"), Some(threads * per_thread));
        assert_eq!(s.histogram("lat").unwrap().count, threads * per_thread);
        assert_eq!(
            s.histogram("lat").unwrap().buckets.iter().sum::<u64>(),
            threads * per_thread
        );
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let r = MetricsRegistry::new();
        r.counter("reqs").add(2);
        r.histogram("lat").record(1_500);
        let text = r.render_text();
        assert!(text.contains("# TYPE reqs counter\nreqs 2\n"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"1000\"} 0"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_sum 1500"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collisions_panic() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }
}
