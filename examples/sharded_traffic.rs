//! Shard-count scaling of streaming ingest on the traffic workload.
//!
//! Replays one hour of the synthetic destination-IP → flow-count stream
//! through the streaming sampling API at increasing shard counts, timing the
//! ingest → merge → finalize pass, and contrasts it with the legacy batch
//! path (materialize an `Instance` from the stream, then `sample()` it).
//! It then runs the same estimation suite through [`StreamPipeline`] at each
//! shard count to demonstrate the core guarantee: **sharding changes the
//! wall clock, never the estimates** — hash-seeded sketches merge to the
//! bit-identical sample the single stream would produce.
//!
//! Run with:
//! ```text
//! cargo run --release --example sharded_traffic
//! ```

use std::sync::Arc;
use std::time::Instant;

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{generate_two_hours, ShardedStream, TrafficConfig};
use partial_info_estimators::sampling::{Instance, PpsPoissonSampler, SeedAssignment};
use partial_info_estimators::{
    ingest_merge_finalize, sketch_pools, Scheme, Statistic, StreamPipeline,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut config = TrafficConfig::paper_scale();
    config.keys_per_hour = 50_000;
    config.flows_per_hour = 1.1e6;
    let data = Arc::new(generate_two_hours(&config));
    let tau_star = 60.0;
    let sampler = PpsPoissonSampler::new(tau_star);
    let seeds = SeedAssignment::independent_known(7);

    let total_records: usize = data.instances().iter().map(Instance::len).sum();
    println!("two hours of traffic: {total_records} records, τ* = {tau_star}\n");

    // Legacy batch baseline: each hour's stream must first be materialized
    // into an Instance before sample() can run.
    let stream1 = ShardedStream::from_dataset(&data, 1);
    let start = Instant::now();
    let batch_samples: Vec<_> = (0..stream1.num_instances())
        .map(|i| {
            let instance = Instance::from_pairs(stream1.part(i, 0).iter().copied());
            sampler.sample(&instance, &seeds, i as u64)
        })
        .collect();
    let batch_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("legacy batch (materialize + sample) : {batch_ms:8.2} ms");

    // Streaming ingest at increasing shard counts, through the exact pass
    // the StreamPipeline hot loop runs (one thread per shard, merge tree).
    for shards in SHARD_COUNTS {
        let stream = ShardedStream::from_dataset(&data, shards);
        let mut pools = sketch_pools(&sampler, &stream, &seeds);
        let start = Instant::now();
        let samples = ingest_merge_finalize(&stream, &mut pools, &seeds);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let identical = samples == batch_samples;
        println!(
            "streaming ingest, {shards} shard(s)        : {ms:8.2} ms   \
             samples == batch: {identical}"
        );
        assert!(identical, "sharded merge must be bit-identical");
    }

    // End to end: the estimates are invariant in the shard count *and* in
    // the trial-worker thread count (shards parallelize one trial's ingest;
    // threads parallelize across trials — both are execution choices).
    println!("\nestimates per (shard, trial-thread) count (must all be identical):");
    let mut last: Option<(usize, usize, f64)> = None;
    for shards in SHARD_COUNTS {
        for threads in [1, 4] {
            let report = StreamPipeline::new()
                .dataset(Arc::clone(&data))
                .scheme(Scheme::pps(tau_star))
                .shards(shards)
                .threads(threads)
                .estimators(max_weighted_suite())
                .statistic(Statistic::max_dominance())
                .trials(10)
                .base_salt(1)
                .run()
                .expect("stream pipeline is fully configured");
            let l = report.get("max_l_pps_2").expect("L in suite");
            println!(
                "  {shards} shard(s) x {threads} thread(s): mean L estimate = {:.4}",
                l.mean
            );
            if let Some((prev_shards, prev_threads, prev_mean)) = last {
                assert_eq!(
                    prev_mean.to_bits(),
                    l.mean.to_bits(),
                    "estimates diverged between {prev_shards}x{prev_threads} and \
                     {shards} shards x {threads} threads"
                );
            }
            last = Some((shards, threads, l.mean));
        }
    }
    println!("\nsharding and threading are execution strategies, not statistical choices.");
}
