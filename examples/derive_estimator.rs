//! Deriving estimators with Algorithm 1 (Section 3) — and watching the
//! derivation fail where the paper proves it must (Section 6).
//!
//! The derivation engine works on finite models (finite data domain, finite
//! sample space).  Here we:
//!
//! 1. derive the `OR^(L)` estimator over weight-oblivious binary samples and
//!    compare it with the closed form;
//! 2. derive an estimator for Boolean AND, a function the paper does not
//!    treat explicitly — the methodology is fully generic;
//! 3. attempt the derivation for OR under weighted sampling with *unknown*
//!    seeds and watch the nonnegativity requirement become unsatisfiable.
//!
//! Run with:
//! ```text
//! cargo run --example derive_estimator
//! ```

use partial_info_estimators::core::derive::{
    dense_first_order, derive_order_based, sparse_first_order, FiniteModel, ObliviousPoissonModel,
    WeightedUnknownSeedsBinaryModel,
};
use partial_info_estimators::core::functions::{boolean_and, boolean_or};
use partial_info_estimators::core::negative::or_unknown_seeds_forced_estimator;

fn describe(key: &[u32]) -> String {
    key.iter()
        .map(|&c| match c {
            0 => "·".to_string(),
            c => format!("{}", c - 1),
        })
        .collect::<Vec<_>>()
        .join("")
}

fn main() {
    let (p1, p2) = (0.5, 0.3);

    println!("== 1. OR over weight-oblivious binary samples (p = {p1}, {p2}) ==\n");
    let model = ObliviousPoissonModel::binary(vec![p1, p2]);
    let order = dense_first_order(&model.data_vectors());
    let or_l =
        derive_order_based(&model, boolean_or, &order, 1e-12).expect_success("OR^(L) derivation");
    println!("outcome  estimate   ('·' = entry not sampled)");
    let mut keys: Vec<_> = or_l.estimates().keys().cloned().collect();
    keys.sort();
    for key in keys {
        println!("  {:>4}   {:>8.4}", describe(&key), or_l.estimate(&key));
    }
    println!(
        "max bias over the domain: {:.2e}, nonnegative: {}\n",
        or_l.max_bias(&model, boolean_or),
        or_l.is_nonnegative(1e-12)
    );

    println!("== 2. The same machinery derives an estimator for Boolean AND ==\n");
    let and_hat =
        derive_order_based(&model, boolean_and, &order, 1e-12).expect_success("AND derivation");
    let mut keys: Vec<_> = and_hat.estimates().keys().cloned().collect();
    keys.sort();
    for key in keys {
        println!("  {:>4}   {:>8.4}", describe(&key), and_hat.estimate(&key));
    }
    println!(
        "max bias: {:.2e}, nonnegative: {}, variance on (1,1): {:.4}\n",
        and_hat.max_bias(&model, boolean_and),
        and_hat.is_nonnegative(1e-12),
        and_hat.variance(&model, &[1.0, 1.0])
    );

    println!("== 3. OR with weighted sampling and UNKNOWN seeds (p1 + p2 < 1) ==\n");
    let model = WeightedUnknownSeedsBinaryModel::new(vec![p1, p2 - 0.1]);
    let order = sparse_first_order(&model.data_vectors());
    let forced = derive_order_based(&model, boolean_or, &order, 1e-12)
        .expect_success("unknown-seed OR derivation");
    println!("the unique unbiased estimator is forced to the values");
    let analytic = or_unknown_seeds_forced_estimator(p1, p2 - 0.1);
    println!("  outcome ∅      : {:>8.4}", analytic[0]);
    println!("  outcome {{1}}    : {:>8.4}", analytic[1]);
    println!("  outcome {{2}}    : {:>8.4}", analytic[2]);
    println!("  outcome {{1,2}}  : {:>8.4}   <-- negative!", analytic[3]);
    println!(
        "most negative value found by the engine: {:.4}",
        forced.most_negative()
    );
    println!("\nTheorem 6.1: with unknown seeds no unbiased *nonnegative* estimator exists;");
    println!(
        "reproducible (hash-generated) seeds are what make the Section 5 estimators possible."
    );
}
