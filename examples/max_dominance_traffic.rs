//! Max-dominance estimation over two hours of (synthetic) IP traffic
//! (Section 8.2 / Figure 7), ingested as a sharded record stream.
//!
//! Each hour's destination-IP → flow-count log is replayed as a stream of
//! `(key, weight)` records, partitioned by key across four shard sketches
//! that ingest concurrently and merge — no hour is ever materialized by the
//! sampling stage.  The merged sketches finalize into Poisson PPS samples
//! with hash seeds, from which the max-dominance norm
//! `Σ_h max(v₁(h), v₂(h))` — a measure of peak per-destination load across
//! the two hours — is estimated, comparing the HT and the Pareto-optimal L
//! estimators.
//!
//! The repeated-sampling experiment runs through the [`StreamPipeline`]
//! front-end: sharded ingest, merge tree, pooled outcome assembly, batched
//! estimation (`Estimator::estimate_batch`), and aggregation are wired by
//! the library, not hand-rolled here.
//!
//! Run with:
//! ```text
//! cargo run --release --example max_dominance_traffic
//! ```

use partial_info_estimators::core::aggregate::{
    max_dominance_ht, max_dominance_l, true_max_dominance,
};
use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
use partial_info_estimators::sampling::{sample_all, PpsPoissonSampler, SeedAssignment};
use partial_info_estimators::{Scheme, Statistic, StreamPipeline};

fn main() {
    let mut config = TrafficConfig::paper_scale();
    config.keys_per_hour = 8_000; // keep the example snappy; use paper_scale() as-is for the full run
    config.flows_per_hour = 1.8e5;
    let data = generate_two_hours(&config);
    let truth = true_max_dominance(data.instances(), |_| true);

    println!("hours          : 2 (synthetic, heavy-tailed, partially overlapping)");
    println!("keys per hour  : {}", data.instances()[0].len());
    println!("distinct keys  : {}", data.keys().len());
    println!("true Σ max     : {truth:.0}\n");

    // About 4% of keys sampled per hour.
    let tau_star = 60.0;

    // A few illustrative samplings through the low-level streaming API first
    // (sample_all drives one sketch per hour: ingest → finalize).
    let sampler = PpsPoissonSampler::new(tau_star);
    println!(
        "{:>10}  {:>14}  {:>14}  {:>10}",
        "sample", "HT estimate", "L estimate", "truth"
    );
    for rep in 0..5u64 {
        let seeds = SeedAssignment::independent_known(rep);
        let samples = sample_all(&sampler, data.instances(), &seeds);
        let ht = max_dominance_ht(&samples, &seeds, |_| true);
        let l = max_dominance_l(&samples, &seeds, |_| true);
        let size = samples[0].len() + samples[1].len();
        println!("{size:>10}  {ht:>14.0}  {l:>14.0}  {truth:>10.0}");
    }

    // The full repeated-sampling comparison, end to end through the sharded
    // streaming front-end: 4 shard sketches per hour, merged per trial, and
    // trials spread over the machine's cores (the thread count — here the
    // PIE_THREADS / available-parallelism default — never changes the
    // report, so this line is reproducible everywhere).
    let report = StreamPipeline::new()
        .dataset(data)
        .scheme(Scheme::pps(tau_star))
        .shards(4)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(30)
        .base_salt(0)
        .run()
        .expect("stream pipeline is fully configured");

    println!(
        "\nover {} independent samplings (4 ingest shards per hour):",
        report.trials
    );
    println!("{}", report.render());
    let ht = report.get("max_ht_pps").expect("HT in suite");
    let l = report.get("max_l_pps_2").expect("L in suite");
    println!(
        "  variance ratio VAR[HT]/VAR[L] ≈ {:.2}",
        ht.variance / l.variance
    );
    println!("\n(The paper reports ratios between 2.45 and 2.7 on its traffic data.");
    println!(" Shard count is an execution choice: any value yields bit-identical estimates.)");
}
