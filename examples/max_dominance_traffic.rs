//! Max-dominance estimation over two hours of (synthetic) IP traffic
//! (Section 8.2 / Figure 7).
//!
//! Each hour's destination-IP → flow-count log is summarized independently by
//! Poisson PPS sampling with hash seeds.  The max-dominance norm
//! `Σ_h max(v₁(h), v₂(h))` — a measure of peak per-destination load across the
//! two hours — is then estimated from the two samples, comparing the HT and
//! the Pareto-optimal L estimators.
//!
//! Run with:
//! ```text
//! cargo run --release --example max_dominance_traffic
//! ```

use partial_info_estimators::analysis::RunningStats;
use partial_info_estimators::core::aggregate::{
    max_dominance_ht, max_dominance_l, true_max_dominance,
};
use partial_info_estimators::datagen::{generate_two_hours, TrafficConfig};
use partial_info_estimators::sampling::{sample_all_pps, SeedAssignment};

fn main() {
    let mut config = TrafficConfig::paper_scale();
    config.keys_per_hour = 8_000; // keep the example snappy; use paper_scale() as-is for the full run
    config.flows_per_hour = 1.8e5;
    let data = generate_two_hours(&config);
    let truth = true_max_dominance(data.instances(), |_| true);

    println!("hours          : 2 (synthetic, heavy-tailed, partially overlapping)");
    println!("keys per hour  : {}", data.instances()[0].len());
    println!("distinct keys  : {}", data.keys().len());
    println!("true Σ max     : {truth:.0}\n");

    // About 4% of keys sampled per hour.
    let tau_star = 60.0;
    println!("{:>10}  {:>14}  {:>14}  {:>10}", "sample", "HT estimate", "L estimate", "truth");
    let (mut ht_stats, mut l_stats) = (RunningStats::new(), RunningStats::new());
    for rep in 0..30u64 {
        let seeds = SeedAssignment::independent_known(rep);
        let samples = sample_all_pps(data.instances(), tau_star, &seeds);
        let ht = max_dominance_ht(&samples, &seeds, |_| true);
        let l = max_dominance_l(&samples, &seeds, |_| true);
        ht_stats.push(ht);
        l_stats.push(l);
        if rep < 5 {
            let size = samples[0].len() + samples[1].len();
            println!("{size:>10}  {ht:>14.0}  {l:>14.0}  {truth:>10.0}");
        }
    }

    println!("\nover {} independent samplings:", ht_stats.count());
    println!(
        "  HT: mean {:.0} (bias {:+.2}%), cv {:.3}",
        ht_stats.mean(),
        100.0 * (ht_stats.mean() - truth) / truth,
        ht_stats.std_dev() / truth
    );
    println!(
        "  L : mean {:.0} (bias {:+.2}%), cv {:.3}",
        l_stats.mean(),
        100.0 * (l_stats.mean() - truth) / truth,
        l_stats.std_dev() / truth
    );
    println!(
        "  variance ratio VAR[HT]/VAR[L] ≈ {:.2}",
        ht_stats.variance() / l_stats.variance()
    );
    println!("\n(The paper reports ratios between 2.45 and 2.7 on its traffic data.)");
}
