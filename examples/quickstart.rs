//! Quickstart: estimate `max(v₁, v₂)` from two independently sampled
//! instances — first for a single outcome, then for whole estimator families
//! over batches, then end to end through the [`Pipeline`] builder.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use partial_info_estimators::analysis::{evaluate_oblivious_family, evaluate_pps_family};
use partial_info_estimators::core::functions::maximum;
use partial_info_estimators::core::oblivious::{MaxHtOblivious, MaxL2, MaxU2};
use partial_info_estimators::core::suite::{max_oblivious_suite, max_weighted_suite};
use partial_info_estimators::core::Estimator;
use partial_info_estimators::datagen::paper_example;
use partial_info_estimators::sampling::{ObliviousEntry, ObliviousOutcome, OutcomeView};
use partial_info_estimators::{Pipeline, Scheme, Statistic};

fn main() {
    println!("== Partial information in a single outcome ==\n");

    // A key had value 8.0 in instance 1 and some unknown value in instance 2.
    // Each instance was sampled (weight-obliviously) with probability 1/2, and
    // only instance 1 sampled the key.
    let outcome = ObliviousOutcome::new(vec![
        ObliviousEntry {
            p: 0.5,
            value: Some(8.0),
        },
        ObliviousEntry {
            p: 0.5,
            value: None,
        },
    ]);
    // The allocation-free OutcomeView accessors describe what sampling revealed:
    println!(
        "outcome: instances {:?} of {} sampled, max sampled value {:?}",
        outcome.sampled_indices_iter().collect::<Vec<_>>(),
        outcome.num_instances(),
        outcome.max_sampled(),
    );

    let ht = MaxHtOblivious;
    let l = MaxL2::new(0.5, 0.5);
    let u = MaxU2::new(0.5, 0.5);
    println!(
        "  max^(HT) estimate : {:>7.3}   (ignores the partial information)",
        ht.estimate(&outcome)
    );
    println!(
        "  max^(L)  estimate : {:>7.3}   (credits the lower bound of 8.0)",
        l.estimate(&outcome)
    );
    println!("  max^(U)  estimate : {:>7.3}", u.estimate(&outcome));

    println!("\n== The whole estimator family over shared outcome batches ==\n");
    // evaluate_*_family simulates each outcome batch once and runs every
    // registered estimator over it through Estimator::estimate_batch.
    let v = [8.0, 6.0];
    let p = [0.5, 0.5];
    for (name, eval) in
        evaluate_oblivious_family(&max_oblivious_suite(0.5, 0.5), maximum, &v, &p, 200_000, 1)
    {
        println!(
            "  {name:<18}: mean = {:>7.3} (truth {:.1}), variance = {:>8.3}",
            eval.mean, eval.truth, eval.variance
        );
    }

    println!("\n== Weighted (PPS) sampling with known seeds ==\n");
    let tau = [20.0, 20.0];
    for (name, eval) in evaluate_pps_family(&max_weighted_suite(), maximum, &v, &tau, 200_000, 4) {
        println!(
            "  {name:<18}: mean = {:>7.3} (truth {:.1}), variance = {:>8.3}",
            eval.mean, eval.truth, eval.variance
        );
    }

    println!("\n== End to end: the Pipeline builder ==\n");
    // datagen → sampling → pooled outcome assembly → batched estimation →
    // sum aggregation, with no per-outcome allocation in the hot loop.
    let report = Pipeline::new()
        .dataset(paper_example().take_instances(2))
        .scheme(Scheme::oblivious(0.5))
        .estimators(max_oblivious_suite(0.5, 0.5))
        .statistic(Statistic::max_dominance())
        .trials(5000)
        .run()
        .expect("pipeline is fully configured");
    println!("{}", report.render());
    println!(
        "Lowest-variance estimator: {}",
        report.best_by_variance().unwrap_or("n/a")
    );
    println!("\nAll estimators are unbiased; the L estimators have visibly lower variance.");
}
