//! Quickstart: estimate `max(v₁, v₂)` for a single key from two independently
//! sampled instances, and see why partial information matters.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use partial_info_estimators::analysis::{evaluate_oblivious, evaluate_pps_known_seeds};
use partial_info_estimators::core::functions::maximum;
use partial_info_estimators::core::oblivious::{MaxHtOblivious, MaxL2, MaxU2};
use partial_info_estimators::core::weighted::{MaxHtPps, MaxLPps2};
use partial_info_estimators::core::Estimator;
use partial_info_estimators::sampling::{ObliviousEntry, ObliviousOutcome};

fn main() {
    println!("== Partial information in a single outcome ==\n");

    // A key had value 8.0 in instance 1 and some unknown value in instance 2.
    // Each instance was sampled (weight-obliviously) with probability 1/2, and
    // only instance 1 sampled the key.
    let outcome = ObliviousOutcome::new(vec![
        ObliviousEntry { p: 0.5, value: Some(8.0) },
        ObliviousEntry { p: 0.5, value: None },
    ]);

    let ht = MaxHtOblivious;
    let l = MaxL2::new(0.5, 0.5);
    let u = MaxU2::new(0.5, 0.5);
    println!("outcome: instance 1 sampled value 8.0, instance 2 not sampled");
    println!("  max^(HT) estimate : {:>7.3}   (ignores the partial information)", ht.estimate(&outcome));
    println!("  max^(L)  estimate : {:>7.3}   (credits the lower bound of 8.0)", l.estimate(&outcome));
    println!("  max^(U)  estimate : {:>7.3}", u.estimate(&outcome));

    println!("\n== Variance over the whole sampling distribution ==\n");
    let v = [8.0, 6.0];
    let p = [0.5, 0.5];
    for (name, eval) in [
        ("max^(HT)", evaluate_oblivious(&ht, maximum, &v, &p, 200_000, 1)),
        ("max^(L) ", evaluate_oblivious(&l, maximum, &v, &p, 200_000, 2)),
        ("max^(U) ", evaluate_oblivious(&u, maximum, &v, &p, 200_000, 3)),
    ] {
        println!(
            "  {name}: mean = {:>7.3} (truth {:.1}), variance = {:>8.3}",
            eval.mean, eval.truth, eval.variance
        );
    }

    println!("\n== Weighted (PPS) sampling with known seeds ==\n");
    let v = [8.0, 6.0];
    let tau = [20.0, 20.0];
    for (name, eval) in [
        (
            "max^(HT)",
            evaluate_pps_known_seeds(&MaxHtPps, maximum, &v, &tau, 200_000, 4),
        ),
        (
            "max^(L) ",
            evaluate_pps_known_seeds(&MaxLPps2, maximum, &v, &tau, 200_000, 5),
        ),
    ] {
        println!(
            "  {name}: mean = {:>7.3} (truth {:.1}), variance = {:>8.3}",
            eval.mean, eval.truth, eval.variance
        );
    }
    println!("\nBoth pairs are unbiased; the L estimators have visibly lower variance.");
}
