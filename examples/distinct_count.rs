//! Distinct-count estimation over two periodic logs (Section 8.1).
//!
//! Two days of request logs each have a set of active URLs.  Each day is
//! summarized independently by Bernoulli (PPS-of-binary) sampling with
//! hash-derived seeds; afterwards we estimate how many distinct URLs were
//! active over the two days — without ever joining the full logs.
//!
//! Run with:
//! ```text
//! cargo run --release --example distinct_count
//! ```

use partial_info_estimators::core::aggregate::{
    distinct_count_ht, distinct_count_l, distinct_ht_variance, distinct_l_variance,
};
use partial_info_estimators::datagen::{generate_set_pair, SetPairConfig};
use partial_info_estimators::sampling::{PpsPoissonSampler, SeedAssignment};

fn main() {
    let n = 50_000;
    let jaccard = 0.6;
    let p = 0.05; // sample 5% of each day's active URLs

    let config = SetPairConfig::new(n, jaccard);
    let data = generate_set_pair(&config);
    let truth = config.union_size() as f64;

    println!("two days with {n} active URLs each, Jaccard = {jaccard}");
    println!("true distinct count          : {truth}");
    println!("sampling probability         : {p}\n");

    // Summarize each day independently (this is the only pass over the data).
    let seeds = SeedAssignment::independent_known(2024);
    let sampler = PpsPoissonSampler::new(1.0 / p);
    let s1 = sampler.sample(&data.instances()[0], &seeds, 0);
    let s2 = sampler.sample(&data.instances()[1], &seeds, 1);
    println!(
        "sample sizes                 : {} and {}",
        s1.len(),
        s2.len()
    );

    // Estimate from the samples alone.
    let ht = distinct_count_ht(&s1, &s2, &seeds, |_| true);
    let l = distinct_count_l(&s1, &s2, &seeds, |_| true);
    println!(
        "\nHT estimate                  : {ht:>12.1}  (error {:+.2}%)",
        100.0 * (ht - truth) / truth
    );
    println!(
        "L  estimate                  : {l:>12.1}  (error {:+.2}%)",
        100.0 * (l - truth) / truth
    );

    // Analytic standard deviations (Section 8.1).
    let sd_ht = distinct_ht_variance(truth, p, p).sqrt();
    let sd_l = distinct_l_variance(truth, jaccard, p, p).sqrt();
    println!("\npredicted std-dev (HT)       : {sd_ht:>12.1}");
    println!("predicted std-dev (L)        : {sd_l:>12.1}");
    println!(
        "\nthe L estimator needs about {:.1}x fewer samples for the same accuracy",
        (sd_ht / sd_l).powi(2)
    );

    // A selection predicate: distinct count restricted to \"even\" URLs.
    let even_truth: f64 = data.keys().iter().filter(|&&k| k % 2 == 0).count() as f64;
    let even_l = distinct_count_l(&s1, &s2, &seeds, |k| k % 2 == 0);
    println!("\nselected subset (even keys)  : true {even_truth}, L estimate {even_l:.1}");
}
