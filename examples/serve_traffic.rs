//! End-to-end serving scenario: spawn a sketch-query server, shard-ingest a
//! synthetic traffic workload from concurrent clients, load a persisted
//! snapshot alongside it, and fan out query threads — asserting every
//! served estimate is bit-identical to the in-process pipeline.
//!
//! ```text
//! cargo run --release --example serve_traffic
//! ```

use std::sync::Arc;
use std::time::Instant;

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{
    dataset_records, generate_two_hours, shard_of, TrafficConfig,
};
use partial_info_estimators::{Pipeline, Scheme, Statistic, StreamPipeline};
use pie_serve::{IngestRecord, ServeClient, Server, SketchConfig};

const INGEST_SHARDS: usize = 4;
const QUERY_THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 8;

fn main() {
    let data = Arc::new(generate_two_hours(&TrafficConfig::small(6)));
    let config = SketchConfig {
        scheme: Scheme::pps(150.0),
        shards: INGEST_SHARDS as u64,
        trials: 12,
        base_salt: 5,
    };

    // The in-process reference: what every served answer must equal.
    let reference = Pipeline::new()
        .dataset(Arc::clone(&data))
        .scheme(config.scheme)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(config.trials)
        .base_salt(config.base_salt)
        .run()
        .expect("reference pipeline");

    let server = Server::bind("127.0.0.1:0").expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // 1) Live ingest: INGEST_SHARDS concurrent clients each stream one
    //    key-partition of the records, then one client finalizes.  The
    //    finalized sketch is independent of batch arrival order.
    let start = Instant::now();
    let mut shards: Vec<Vec<IngestRecord>> = vec![Vec::new(); INGEST_SHARDS];
    for r in dataset_records(&data) {
        shards[shard_of(r.key, INGEST_SHARDS)].push(IngestRecord {
            instance: r.instance,
            key: r.key,
            value: r.value,
        });
    }
    let total_records: usize = shards.iter().map(Vec::len).sum();
    std::thread::scope(|scope| {
        for shard in &shards {
            scope.spawn(|| {
                let mut client = ServeClient::connect(addr).expect("connect ingester");
                for chunk in shard.chunks(512) {
                    client
                        .ingest_batch("traffic_live", config, chunk.to_vec(), false)
                        .expect("ingest batch");
                }
            });
        }
    });
    let mut coordinator = ServeClient::connect(addr).expect("connect coordinator");
    let ack = coordinator
        .ingest_batch("traffic_live", config, Vec::new(), true)
        .expect("finalize");
    assert!(ack.ready);
    println!(
        "ingested {total_records} records over {INGEST_SHARDS} wire shards and finalized in {:.1} ms",
        start.elapsed().as_secs_f64() * 1e3
    );

    // 2) Persisted snapshot: export the same pipeline's sketch state to a
    //    pie-store snapshot file and have the server load it.
    let entry = StreamPipeline::new()
        .dataset(Arc::clone(&data))
        .scheme(config.scheme)
        .shards(INGEST_SHARDS)
        .trials(config.trials)
        .base_salt(config.base_salt)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .into_catalog_entry()
        .expect("catalog entry");
    let dir = std::env::temp_dir().join(format!("pie-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("traffic.pies");
    entry.save(&path).expect("save snapshot");
    let info = coordinator
        .load_snapshot("traffic_snapshot", path.to_str().expect("utf-8 path"))
        .expect("load snapshot");
    println!(
        "loaded snapshot {:?} ({} instances, {} trials)",
        info.name, info.instances, info.config.trials
    );

    // 3) Query fan-out: QUERY_THREADS clients hammer both sketches; every
    //    response must be bit-identical to the in-process reference.
    let start = Instant::now();
    let queries = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..QUERY_THREADS {
            let reference = &reference;
            handles.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect querier");
                for q in 0..QUERIES_PER_THREAD {
                    let sketch = if (worker + q) % 2 == 0 {
                        "traffic_live"
                    } else {
                        "traffic_snapshot"
                    };
                    let report = client
                        .estimate(sketch, "max_weighted", "max_dominance")
                        .expect("estimate");
                    assert_eq!(
                        &report, reference,
                        "served report over {sketch} must be bit-identical"
                    );
                }
                QUERIES_PER_THREAD
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("querier"))
            .sum::<usize>()
    });
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{queries} queries from {QUERY_THREADS} threads in {:.1} ms ({:.0} q/s), all bit-identical to the in-process pipeline",
        elapsed * 1e3,
        queries as f64 / elapsed
    );

    let listing = coordinator.list_catalog().expect("list");
    println!("catalog: {} sketches", listing.len());
    for row in &listing {
        println!(
            "  {:<18} ready={} instances={} trials={}",
            row.name, row.ready, row.instances, row.config.trials
        );
    }
    println!("\n{}", reference.render());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
