//! A walk-through of the paper's Figure 5 worked example: the 3 × 6 data
//! matrix, its multi-instance aggregates, PPS rank assignments under shared
//! and independent seeds, and bottom-3 samples of each instance.
//!
//! Run with:
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use partial_info_estimators::analysis::Table;
use partial_info_estimators::core::functions::{maximum, minimum, range};
use partial_info_estimators::datagen::paper_example;
use partial_info_estimators::sampling::{BottomKSampler, PpsRanks, RankFamily, SeedAssignment};

fn main() {
    let data = paper_example();
    println!("Figure 5 (A): the instances × keys matrix\n");
    let mut matrix = Table::new("data", &["instance\\key", "1", "2", "3", "4", "5", "6"]);
    for (i, inst) in data.instances().iter().enumerate() {
        let mut row = vec![format!("{}", i + 1)];
        for key in 1..=6u64 {
            row.push(format!("{}", inst.value(key)));
        }
        matrix.push_row(&row);
    }
    println!("{}", matrix.render());

    println!("per-key multi-instance functions:\n");
    let mut funcs = Table::new("functions", &["f", "1", "2", "3", "4", "5", "6"]);
    let two = data.take_instances(2);
    for (name, values) in [
        (
            "max(v1,v2)",
            (1..=6u64)
                .map(|k| maximum(&two.value_vector(k)))
                .collect::<Vec<_>>(),
        ),
        (
            "max(v1,v2,v3)",
            (1..=6u64).map(|k| maximum(&data.value_vector(k))).collect(),
        ),
        (
            "min(v1,v2)",
            (1..=6u64).map(|k| minimum(&two.value_vector(k))).collect(),
        ),
        (
            "RG(v1,v2,v3)",
            (1..=6u64).map(|k| range(&data.value_vector(k))).collect(),
        ),
    ] {
        let mut row = vec![name.to_string()];
        row.extend(values.iter().map(|v| format!("{v}")));
        funcs.push_row(&row);
    }
    println!("{}", funcs.render());

    println!("example sum aggregates (Section 7):");
    println!(
        "  max dominance over even keys, instances {{1,2}} : {}",
        two.sum_aggregate(maximum, |k| k % 2 == 0)
    );
    let i23 = partial_info_estimators::datagen::Dataset::new(
        "instances 2,3",
        data.instances()[1..3].to_vec(),
    );
    println!(
        "  L1 distance between instances {{2,3}}, keys 1-3  : {}",
        i23.sum_aggregate(range, |k| k <= 3)
    );

    println!("\nFigure 5 (B)/(C): PPS ranks and bottom-3 samples\n");
    for (label, seeds) in [
        ("shared seed (coordinated)", SeedAssignment::shared(42)),
        ("independent seeds", SeedAssignment::independent_known(42)),
    ] {
        println!("-- {label} --");
        let mut ranks = Table::new(
            "PPS ranks",
            &["instance\\key", "1", "2", "3", "4", "5", "6"],
        );
        for (i, inst) in data.instances().iter().enumerate() {
            let mut row = vec![format!("r{}", i + 1)];
            for key in 1..=6u64 {
                let v = inst.value(key);
                let rank = PpsRanks.rank_from_seed(seeds.seed(key, i as u64), v);
                row.push(if rank.is_finite() {
                    format!("{rank:.3}")
                } else {
                    "inf".to_string()
                });
            }
            ranks.push_row(&row);
        }
        println!("{}", ranks.render());

        for (i, inst) in data.instances().iter().enumerate() {
            let sample = BottomKSampler::new(PpsRanks, 3).sample(inst, &seeds, i as u64);
            println!(
                "  bottom-3 sample of instance {}: keys {:?}",
                i + 1,
                sample.sorted_keys()
            );
        }
        println!();
    }
    println!("With the shared seed, instances with similar values select similar key sets;");
    println!("with independent seeds the selections are unrelated (compare the lists above).");
}
