//! Checkpoint → restart → resume, with a bit-identical report.
//!
//! Simulates the production failure story on the traffic workload: a
//! sharded ingest session processes half the record stream, checkpoints its
//! per-`(instance, shard)` sketch state to versioned snapshot files, and
//! "crashes" (the session is dropped).  A fresh, identically configured
//! pipeline resumes from the checkpoint directory, ingests the remaining
//! records, and finishes — and the resulting report is **bit-identical** to
//! an uninterrupted [`StreamPipeline::run`].  The report itself is then
//! persisted and reloaded through the same snapshot codec.
//!
//! Run with:
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```

use std::sync::Arc;

use partial_info_estimators::core::suite::max_weighted_suite;
use partial_info_estimators::datagen::{generate_two_hours, Dataset, TrafficConfig};
use partial_info_estimators::{PipelineReport, Scheme, Statistic, StreamPipeline};

fn configure(data: &Arc<Dataset>) -> StreamPipeline {
    StreamPipeline::new()
        .dataset(Arc::clone(data))
        .scheme(Scheme::pps(120.0))
        .shards(4)
        .estimators(max_weighted_suite())
        .statistic(Statistic::max_dominance())
        .trials(20)
        .base_salt(11)
}

fn main() {
    let mut config = TrafficConfig::small(21);
    config.keys_per_hour = 20_000;
    config.flows_per_hour = 4.5e5;
    let data = Arc::new(generate_two_hours(&config));
    let dir = std::env::temp_dir().join(format!("pie-checkpoint-example-{}", std::process::id()));

    // First process: ingest half the stream, checkpoint, crash.
    let mut session = configure(&data)
        .ingest_session()
        .expect("pipeline is fully configured");
    let half = session.total_records() / 2;
    session.ingest_records(half);
    session.checkpoint(&dir).expect("write snapshot files");
    println!(
        "ingested {} of {} records, checkpointed to {}",
        session.ingested(),
        session.total_records(),
        dir.display()
    );
    drop(session); // the "crash": all in-memory sketch state is gone

    // Second process: an identically configured pipeline resumes.
    let mut resumed = configure(&data)
        .resume(&dir)
        .expect("manifest matches the configuration");
    println!(
        "resumed at watermark {} ({} records remaining)",
        resumed.ingested(),
        resumed.remaining()
    );
    resumed.ingest_all();
    let report = resumed.finish().expect("stream fully ingested");

    // The uninterrupted run, for comparison.
    let uninterrupted = configure(&data).run().expect("same configuration");
    assert_eq!(
        report, uninterrupted,
        "checkpoint → resume must reproduce the uninterrupted report bit for bit"
    );
    println!("\n{}", report.render());
    println!("resumed report is bit-identical to the uninterrupted run.");

    // Reports snapshot through the same codec: persist, reload, compare.
    let report_path = dir.join("report.pies");
    report.save(&report_path).expect("write report snapshot");
    let reloaded = PipelineReport::load(&report_path).expect("read report snapshot");
    assert_eq!(reloaded, report);
    println!(
        "report snapshot at {} reloads bit-identically.",
        report_path.display()
    );

    std::fs::remove_dir_all(&dir).ok();
}
